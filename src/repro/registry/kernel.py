"""Registry kernel — the unified request pipeline behind every protocol edge.

Historically each protocol entry point (``SoapRegistryBinding._dispatch``,
``HttpGetBinding``, the JAXR ``Connection`` local-call branches) hand-rolled
its own session lookup, authorization, fault mapping, and dispatch.  The
kernel centralizes that shape: a :class:`RequestContext` is created once at
the protocol edge and flows through an ordered **interceptor chain**

    account → fault-map → admit → resolve → authenticate → authorize →
    validate → dispatch

where ``account`` and ``fault-map`` are wrapping stages (they observe every
outcome, success or fault) and the inner stages follow the classic
authenticate → authorize → validate → dispatch request progression.  Edges
(SOAP, HTTP GET, in-process JAXR) differ only in an :class:`EdgeProfile`:
how a session is established, whether the read gate applies at the edge,
and how a :class:`~repro.util.errors.RegistryError` is mapped onto the wire
(SOAP/HTTP serialize faults; the local edge re-raises, preserving the
pre-kernel in-process semantics).

Operations are *declared*, not if/elif'd: :class:`OperationSpec` records the
operation name, the protocol request type it binds to, whether it requires
an authenticated session, whether it is read-gated, and its handler.
``LifeCycleManager.register_operations`` and
``QueryManager.register_operations`` populate the registry at server
construction, so the SOAP body-type dispatch and the HTTP ``method=``
dispatch are two lookups into the same table.

The kernel is also the observability seam: :meth:`RegistryKernel.
pipeline_stats` reports per-edge, per-operation request counts, latency
aggregates, and fault tallies by error code, and custom interceptors can be
inserted anywhere in the chain (timing, admission control, retries) without
touching any binding.  Latency accounting runs over an injectable
:class:`~repro.util.clock.Clock` (default: the monotonic
:class:`~repro.util.clock.PerfClock`), shared with the telemetry tracer so
pipeline latencies and span trees agree on one time source — deterministic
under ``ManualClock`` or simulation time.  With tracing enabled, every
request produces a span tree: one root ``request`` span with one child per
pipeline stage (custom interceptors included), captured by the
:class:`~repro.obs.telemetry.Telemetry` facade's slow-request log when the
request exceeds its threshold.

This module deliberately imports nothing from :mod:`repro.soap` at module
level — the protocol packages depend on the kernel, never the reverse.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Protocol

from repro.util.clock import Clock, PerfClock
from repro.util.errors import InvalidRequestError, RegistryError
from repro.util.workers import current_worker_label

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.telemetry import Telemetry
    from repro.registry.server import RegistryServer
    from repro.security.authn import Session


# -- request context -----------------------------------------------------------


@dataclass
class RequestContext:
    """One request's journey through the pipeline.

    Created at the protocol edge, enriched stage by stage: ``resolve`` sets
    :attr:`spec`, ``authenticate`` sets :attr:`session`, ``dispatch`` sets
    :attr:`response`.  The :attr:`tags` bag is free-form per-request state
    for custom interceptors (the observability seam).
    """

    edge: "EdgeProfile"
    request_id: str
    #: protocol request message (SOAP body / built from HTTP params); may be
    #: None for edge-native operations that work from :attr:`params`.
    body: Any = None
    #: decoded HTTP query parameters (HTTP edge) or call arguments (local edge)
    params: dict[str, Any] = field(default_factory=dict)
    #: HTTP ``method=`` operation selector, when the edge dispatches by name
    http_method: str | None = None
    #: True when the request arrived via the HTTP GET edge (name dispatch)
    via_http: bool = False
    #: session token presented by the client (SOAP header)
    token: str | None = None
    session: "Session | None" = None
    spec: "OperationSpec | None" = None
    response: Any = None
    error: RegistryError | None = None
    #: timestamps from the kernel's injectable clock, set by the account stage
    started: float = 0.0
    finished: float = 0.0
    #: trace id the root span runs under (None while tracing is disabled);
    #: adopted from the client's traceparent header when one arrived
    trace_id: str | None = None
    #: free-form per-request tag bag for interceptors
    tags: dict[str, Any] = field(default_factory=dict)

    @property
    def operation(self) -> str:
        """Resolved operation name, or a placeholder before/without resolve."""
        return self.spec.name if self.spec is not None else UNRESOLVED_OPERATION

    @property
    def latency(self) -> float:
        return self.finished - self.started


#: stats key for requests that fault before operation resolution
UNRESOLVED_OPERATION = "<unresolved>"


# -- operation registry --------------------------------------------------------


@dataclass(frozen=True)
class OperationSpec:
    """Declarative description of one registry operation.

    ``request_type`` is the protocol message *type name* (e.g.
    ``"SubmitObjectsRequest"``) so the kernel never imports the message
    classes; ``http_method`` is the HTTP GET ``method=`` selector when the
    operation is exposed there, and ``http_builder`` turns decoded URL
    params into the protocol message (raising
    :class:`~repro.util.errors.InvalidRequestError` for missing params —
    this is the validate step for the HTTP edge).
    """

    name: str
    handler: Callable[[RequestContext], Any]
    request_type: str | None = None
    requires_session: bool = False
    read_gate: bool = False
    http_method: str | None = None
    http_builder: Callable[[dict[str, Any]], Any] | None = None
    #: optional extra validation, run after authorize, before dispatch
    validator: Callable[[RequestContext], None] | None = None


# -- protocol edges ------------------------------------------------------------


@dataclass(frozen=True)
class EdgeProfile:
    """How one protocol edge plugs into the shared pipeline.

    ``authenticate(ctx, spec)`` must return the session for the request (or
    raise).  ``fault_mapper`` maps a RegistryError to the edge's wire fault
    representation; ``None`` means re-raise unchanged (the in-process JAXR
    edge, which must preserve exact exception semantics).  ``admit`` runs
    before operation resolution (the HTTP edge's anonymous read gate +
    interface check live here, exactly where the pre-kernel code had them).
    ``enforce_read_gate`` applies ``RegistryServer.check_read`` to read
    operations (the local edge is the trusted localCall path and skips it).
    """

    name: str
    authenticate: Callable[[RequestContext, OperationSpec], "Session | None"]
    fault_mapper: Callable[[RegistryError], Any] | None = None
    enforce_read_gate: bool = True
    admit: Callable[[RequestContext], None] | None = None


# -- pipeline statistics -------------------------------------------------------


@dataclass
class OperationStats:
    """Latency/fault aggregates for one (edge, operation) pair."""

    count: int = 0
    faults: int = 0
    total_latency: float = 0.0
    min_latency: float = float("inf")
    max_latency: float = 0.0
    fault_codes: dict[str, int] = field(default_factory=dict)

    def record(self, latency: float, fault_code: str | None) -> None:
        self.count += 1
        self.total_latency += latency
        if latency < self.min_latency:
            self.min_latency = latency
        if latency > self.max_latency:
            self.max_latency = latency
        if fault_code is not None:
            self.faults += 1
            self.fault_codes[fault_code] = self.fault_codes.get(fault_code, 0) + 1

    def merge(self, other: "OperationStats") -> None:
        """Fold *other*'s aggregates into this one (shard merging)."""
        self.count += other.count
        self.faults += other.faults
        self.total_latency += other.total_latency
        if other.min_latency < self.min_latency:
            self.min_latency = other.min_latency
        if other.max_latency > self.max_latency:
            self.max_latency = other.max_latency
        for code, n in other.fault_codes.items():
            self.fault_codes[code] = self.fault_codes.get(code, 0) + n

    def snapshot(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "faults": self.faults,
            "total_latency_s": self.total_latency,
            "mean_latency_s": (self.total_latency / self.count) if self.count else 0.0,
            "min_latency_s": self.min_latency if self.count else 0.0,
            "max_latency_s": self.max_latency,
            "fault_codes": dict(self.fault_codes),
        }


class PipelineStats:
    """Per-edge, per-operation accounting recorded by the account stage.

    Sharded for the concurrent serving core: each recording thread owns a
    private shard (``threading.local``), labelled with its worker identity,
    so the hot path never takes a lock and counts are *exact* — no two
    threads ever increment the same :class:`OperationStats`.  Snapshots
    merge the shards: fleet-wide by default, or grouped per worker label
    with ``per_worker=True``.  A snapshot taken while traffic is in flight
    is near-consistent (a shard may be mid-record); once recording threads
    are quiescent it is exact.
    """

    def __init__(self) -> None:
        self._local = threading.local()
        #: every thread's (worker label, shard) — appended under the lock,
        #: iterated via atomic list() capture at snapshot time
        self._shards: list[tuple[str, dict[str, dict[str, OperationStats]]]] = []
        self._lock = threading.Lock()

    def record(
        self, edge: str, operation: str, latency: float, fault_code: str | None
    ) -> None:
        shard = getattr(self._local, "shard", None)
        if shard is None:
            shard = {}
            with self._lock:
                self._shards.append((current_worker_label(), shard))
            self._local.shard = shard
        ops = shard.setdefault(edge, {})
        stats = ops.get(operation)
        if stats is None:
            stats = ops[operation] = OperationStats()
        stats.record(latency, fault_code)

    @staticmethod
    def _merge_shards(
        shards: list[dict[str, dict[str, OperationStats]]]
    ) -> dict[str, dict[str, dict[str, Any]]]:
        merged: dict[str, dict[str, OperationStats]] = {}
        for shard in shards:
            for edge, ops in shard.items():
                out = merged.setdefault(edge, {})
                for op, stats in ops.items():
                    agg = out.get(op)
                    if agg is None:
                        agg = out[op] = OperationStats()
                    agg.merge(stats)
        return {
            edge: {op: stats.snapshot() for op, stats in sorted(ops.items())}
            for edge, ops in sorted(merged.items())
        }

    def snapshot(self) -> dict[str, dict[str, dict[str, Any]]]:
        """Fleet-wide per-edge → per-operation aggregates (all shards merged)."""
        shards = list(self._shards)
        return self._merge_shards([shard for _, shard in shards])

    def snapshot_per_worker(self) -> dict[str, dict[str, dict[str, dict[str, Any]]]]:
        """Worker label → per-edge → per-operation aggregates."""
        by_worker: dict[str, list[dict[str, dict[str, OperationStats]]]] = {}
        for label, shard in list(self._shards):
            by_worker.setdefault(label, []).append(shard)
        return {
            label: self._merge_shards(shards)
            for label, shards in sorted(by_worker.items())
        }

    def workers(self) -> list[str]:
        """Distinct worker labels that have recorded at least one request."""
        return sorted({label for label, _ in list(self._shards)})


# -- interceptors --------------------------------------------------------------


Proceed = Callable[[], Any]


class Interceptor(Protocol):  # pragma: no cover - typing aid
    name: str

    def __call__(self, kernel: "RegistryKernel", ctx: RequestContext, proceed: Proceed) -> Any:
        ...


@dataclass(frozen=True)
class _Stage:
    """A named pipeline stage wrapping a ``(kernel, ctx, proceed)`` callable."""

    name: str
    run: Callable[["RegistryKernel", RequestContext, Proceed], Any]

    def __call__(self, kernel: "RegistryKernel", ctx: RequestContext, proceed: Proceed) -> Any:
        return self.run(kernel, ctx, proceed)


def _account_stage(kernel: "RegistryKernel", ctx: RequestContext, proceed: Proceed) -> Any:
    ctx.started = kernel.clock.now()
    ctx.tags.setdefault("worker", current_worker_label())
    try:
        return proceed()
    finally:
        ctx.finished = kernel.clock.now()
        fault_code = ctx.error.code if ctx.error is not None else None
        kernel.stats.record(ctx.edge.name, ctx.operation, ctx.latency, fault_code)
        telemetry = kernel.telemetry
        if telemetry is not None:
            if telemetry.attribution_enabled:
                # inner stages have recorded their inclusive times by now;
                # fold them into the per-request cost split before telemetry
                # accounts the request
                ctx.tags["attribution"] = kernel._attribution(ctx)
            telemetry.record_request(ctx)


def _fault_map_stage(kernel: "RegistryKernel", ctx: RequestContext, proceed: Proceed) -> Any:
    try:
        return proceed()
    except RegistryError as error:
        ctx.error = error
        if ctx.edge.fault_mapper is None:
            raise
        fault = ctx.edge.fault_mapper(error)
        ctx.response = fault
        return fault


def _admit_stage(kernel: "RegistryKernel", ctx: RequestContext, proceed: Proceed) -> Any:
    if ctx.edge.admit is not None:
        ctx.edge.admit(ctx)
    return proceed()


def _resolve_stage(kernel: "RegistryKernel", ctx: RequestContext, proceed: Proceed) -> Any:
    if ctx.spec is None:
        if ctx.via_http:
            spec = kernel.operation_for_http_method(ctx.http_method)
            if spec.http_builder is not None:
                ctx.body = spec.http_builder(ctx.params)
            ctx.spec = spec
        else:
            ctx.spec = kernel.operation_for_body(ctx.body)
    return proceed()


def _authenticate_stage(kernel: "RegistryKernel", ctx: RequestContext, proceed: Proceed) -> Any:
    assert ctx.spec is not None
    ctx.session = ctx.edge.authenticate(ctx, ctx.spec)
    return proceed()


def _authorize_stage(kernel: "RegistryKernel", ctx: RequestContext, proceed: Proceed) -> Any:
    assert ctx.spec is not None
    if ctx.spec.read_gate and ctx.edge.enforce_read_gate:
        kernel.server.check_read(ctx.session)
    return proceed()


def _validate_stage(kernel: "RegistryKernel", ctx: RequestContext, proceed: Proceed) -> Any:
    assert ctx.spec is not None
    if ctx.spec.validator is not None:
        ctx.spec.validator(ctx)
    return proceed()


def _dispatch_stage(kernel: "RegistryKernel", ctx: RequestContext, proceed: Proceed) -> Any:
    assert ctx.spec is not None
    ctx.response = ctx.spec.handler(ctx)
    return ctx.response


#: the default chain, outermost first; account/fault-map wrap everything
DEFAULT_CHAIN: tuple[_Stage, ...] = (
    _Stage("account", _account_stage),
    _Stage("fault-map", _fault_map_stage),
    _Stage("admit", _admit_stage),
    _Stage("resolve", _resolve_stage),
    _Stage("authenticate", _authenticate_stage),
    _Stage("authorize", _authorize_stage),
    _Stage("validate", _validate_stage),
    _Stage("dispatch", _dispatch_stage),
)


# -- the kernel ----------------------------------------------------------------


class RegistryKernel:
    """Shared request pipeline + operation registry for one registry server."""

    def __init__(
        self,
        server: "RegistryServer",
        *,
        clock: Clock | None = None,
        telemetry: "Telemetry | None" = None,
    ) -> None:
        self.server = server
        #: latency/tracing time source — monotonic by default, injectable for
        #: deterministic accounting under ManualClock or simulation time
        self.clock: Clock = clock or PerfClock()
        self.telemetry = telemetry
        self.stats = PipelineStats()
        self._by_request_type: dict[str, OperationSpec] = {}
        self._by_http_method: dict[str, OperationSpec] = {}
        self._by_name: dict[str, OperationSpec] = {}
        self._chain: list[Interceptor] = list(DEFAULT_CHAIN)
        #: lazily (re)composed chain.  Benign race under concurrent execute:
        #: two threads may compose equivalent callables and one wins — chain
        #: *edits* (add/remove_interceptor) are configuration-time only.
        self._composed: Callable[[RequestContext], Any] | None = None
        #: atomic under the GIL — a single next() per request, so concurrent
        #: execute() calls can never mint duplicate request ids
        self._request_counter = itertools.count(1)

    # -- operation registry ----------------------------------------------------

    def register_operation(self, spec: OperationSpec) -> None:
        self._by_name[spec.name] = spec
        if spec.request_type is not None:
            self._by_request_type[spec.request_type] = spec
        if spec.http_method is not None:
            self._by_http_method[spec.http_method] = spec

    def operations(self) -> list[str]:
        return sorted(self._by_name)

    def operation(self, name: str) -> OperationSpec | None:
        return self._by_name.get(name)

    def operation_for_body(self, body: Any) -> OperationSpec:
        spec = self._by_request_type.get(type(body).__name__)
        if spec is None:
            raise InvalidRequestError(f"unknown request type: {type(body).__name__}")
        return spec

    def operation_for_http_method(self, method: str | None) -> OperationSpec:
        spec = self._by_http_method.get(method) if method is not None else None
        if spec is None:
            raise InvalidRequestError(f"unknown HTTP method parameter: {method!r}")
        return spec

    # -- interceptor chain -----------------------------------------------------

    def interceptor_names(self) -> list[str]:
        return [stage.name for stage in self._chain]

    def add_interceptor(
        self,
        interceptor: Interceptor,
        *,
        before: str | None = None,
        after: str | None = None,
    ) -> None:
        """Insert a custom interceptor into the chain.

        ``before``/``after`` name an existing stage; default appends at the
        innermost position (just around dispatch's slot, i.e. chain end).
        """
        if before is not None and after is not None:
            raise ValueError("pass at most one of before/after")
        index = len(self._chain)
        anchor = before or after
        if anchor is not None:
            names = self.interceptor_names()
            if anchor not in names:
                raise ValueError(f"unknown pipeline stage: {anchor!r}")
            index = names.index(anchor) + (1 if after else 0)
        self._chain.insert(index, interceptor)
        self._composed = None

    def remove_interceptor(self, name: str) -> bool:
        for i, stage in enumerate(self._chain):
            if getattr(stage, "name", None) == name and stage not in DEFAULT_CHAIN:
                del self._chain[i]
                self._composed = None
                return True
        return False

    def _compose(self) -> Callable[[RequestContext], Any]:
        """Fold the chain into one callable (recomposed on chain edits).

        Each layer carries its own tracing check: with the tracer enabled,
        every stage — default or custom — runs inside a span named after it,
        nesting naturally (account's span contains fault-map's, and so on
        down to dispatch).  Disabled tracing costs one attribute check per
        stage.
        """

        def terminal(ctx: RequestContext) -> Any:
            return ctx.response

        composed: Callable[[RequestContext], Any] = terminal
        for stage in reversed(self._chain):
            stage_name = getattr(stage, "name", "interceptor")
            span_name = "stage:" + stage_name

            def layer(
                ctx: RequestContext,
                *,
                _stage=stage,
                _next=composed,
                _span=span_name,
                _name=stage_name,
            ) -> Any:
                telemetry = self.telemetry
                attributing = (
                    telemetry is not None and telemetry.attribution_enabled
                )
                if attributing:
                    started = self.clock.now()
                try:
                    tracer = self._tracer
                    if tracer is not None and tracer.enabled:
                        with tracer.span(_span):
                            return _stage(self, ctx, lambda: _next(ctx))
                    return _stage(self, ctx, lambda: _next(ctx))
                finally:
                    if attributing:
                        # inclusive wall time; _attribution telescopes these
                        # into exclusive per-stage costs at account time
                        timings = ctx.tags.get("stage_inclusive_s")
                        if timings is None:
                            timings = ctx.tags["stage_inclusive_s"] = {}
                        timings[_name] = self.clock.now() - started

            composed = layer
        return composed

    @property
    def _tracer(self):
        telemetry = self.telemetry
        return telemetry.tracer if telemetry is not None else None

    def _attribution(self, ctx: RequestContext) -> dict[str, Any]:
        """Decompose one finished request's wall time into cost components.

        The chain is strictly linear, so each stage's *exclusive* time is
        its inclusive time minus the next present stage's inclusive time
        (stages skipped by a fault simply don't appear).  The route stage's
        exclusive time excludes its forward hop, which is reported as its
        own component — so

            queue_wait + stage + forward_hop + wire == total

        holds exactly by construction, and the per-stage dict is the
        fine-grained detail underneath ``stage``.
        """
        inclusive = dict(ctx.tags.get("stage_inclusive_s") or {})
        # account's layer timing closes after this runs; its inclusive time
        # is the request latency the stage itself measured
        inclusive["account"] = ctx.latency
        order = [getattr(stage, "name", "interceptor") for stage in self._chain]
        present = [name for name in order if name in inclusive]
        stages: dict[str, float] = {}
        for index, name in enumerate(present):
            inner = (
                inclusive[present[index + 1]] if index + 1 < len(present) else 0.0
            )
            stages[name] = max(0.0, inclusive[name] - inner)
        forward_hop = float(ctx.tags.get("forward_hop_s", 0.0))
        if forward_hop and "route" in stages:
            stages["route"] = max(0.0, stages["route"] - forward_hop)
        queue_wait = float(ctx.tags.get("queue_wait_s", 0.0))
        wire = float(ctx.tags.get("wire_delay_s", 0.0))
        return {
            "queue_wait_s": queue_wait,
            "stage_s": max(0.0, ctx.latency - forward_hop),
            "forward_hop_s": forward_hop,
            "wire_s": wire,
            "total_s": queue_wait + wire + ctx.latency,
            "stages": stages,
        }

    # -- execution -------------------------------------------------------------

    def new_request_id(self) -> str:
        """Cheap per-kernel monotonic request id (never touches IdFactory —
        object-id sequences must not depend on request traffic)."""
        return f"urn:repro:request:{next(self._request_counter)}"

    def execute(
        self,
        edge: EdgeProfile,
        *,
        body: Any = None,
        params: dict[str, Any] | None = None,
        http_method: str | None = None,
        via_http: bool = False,
        token: str | None = None,
        session: "Session | None" = None,
        spec: OperationSpec | None = None,
        traceparent: str | None = None,
        tags: dict[str, Any] | None = None,
    ) -> Any:
        """Run one request through the pipeline and return the edge response.

        ``traceparent`` is the incoming W3C-style trace context, when the
        protocol edge carried one: the root ``request`` span then joins the
        caller's trace instead of starting its own, so client transport
        spans and server pipeline spans share one trace id.  ``tags`` seeds
        the per-request tag bag before any stage runs — protocol edges use
        it to hand interceptors wire-level context (e.g. the SOAP binding
        marks requests another cluster member forwarded, so the ``route``
        interceptor serves them locally instead of forwarding again).
        """
        ctx = RequestContext(
            edge=edge,
            request_id=self.new_request_id(),
            body=body,
            params=params or {},
            http_method=http_method,
            via_http=via_http,
            token=token,
            session=session,
            spec=spec,
        )
        if tags:
            ctx.tags.update(tags)
        if self._composed is None:
            self._composed = self._compose()
        tracer = self._tracer
        if tracer is not None and tracer.enabled:
            with tracer.span_in_trace(
                "request", traceparent, edge=edge.name, request_id=ctx.request_id
            ) as root:
                ctx.trace_id = root.trace_id
                try:
                    result = self._composed(ctx)
                finally:
                    root.tags["operation"] = ctx.operation
                    # routing identity + the cost split ride on the root span,
                    # so a trace alone explains where its wall time went
                    for key in ("route", "route_owner", "forwarded_by"):
                        value = ctx.tags.get(key)
                        if value is not None:
                            root.tags[key] = value
                    attribution = ctx.tags.get("attribution")
                    if attribution is not None:
                        root.tags["attribution"] = attribution
            slow_entry = ctx.tags.get("slow_request")
            if slow_entry is not None:
                slow_entry["trace"] = root.to_dict()
            return result
        return self._composed(ctx)

    # -- observability ---------------------------------------------------------

    def pipeline_stats(self, *, per_worker: bool = False) -> dict:
        """Per-edge → per-operation counts, latency aggregates, fault tallies.

        With ``per_worker=True`` the same tree is reported under each worker
        label instead of fleet-merged (the ``repro stats --per-worker`` view).
        """
        if per_worker:
            return self.stats.snapshot_per_worker()
        return self.stats.snapshot()
