"""Registry federation: federated queries and cross-registry references.

Table 1.1 credits ebXML registries with *federated queries* and *object
references between registries* (UDDI only replicates wholesale).  A
:class:`RegistryFederation` groups member registries: a federated query fans
out to every member and merges results tagged with the home registry;
``resolve`` follows an object reference to whichever member holds it; and
``replicate`` performs the selective replication ebRS allows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.registry.server import RegistryServer
from repro.rim import RegistryObject
from repro.security.authn import Session
from repro.util.errors import InvalidRequestError, ObjectNotFoundError


@dataclass(frozen=True)
class FederatedRow:
    """One federated query result row, tagged with its home registry."""

    home: str
    row: dict[str, Any]


class RegistryFederation:
    """A named group of cooperating registries."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._members: dict[str, RegistryServer] = {}

    # -- membership ------------------------------------------------------------

    def join(self, registry: RegistryServer) -> None:
        if registry.home in self._members:
            raise InvalidRequestError(f"registry already federated: {registry.home}")
        self._members[registry.home] = registry

    def leave(self, registry: RegistryServer) -> None:
        self._members.pop(registry.home, None)

    def members(self) -> list[RegistryServer]:
        return [self._members[home] for home in sorted(self._members)]

    # -- federated query ----------------------------------------------------------

    def federated_query(self, query: str) -> list[FederatedRow]:
        """Run one SQL query against every member, merging tagged results."""
        out: list[FederatedRow] = []
        for registry in self.members():
            response = registry.qm.execute_adhoc_query(query)
            out.extend(FederatedRow(home=registry.home, row=row) for row in response.rows)
        return out

    # -- cross-registry object references ----------------------------------------------

    def resolve(self, object_id: str) -> tuple[RegistryServer, RegistryObject]:
        """Find which member holds *object_id* and return (registry, object)."""
        for registry in self.members():
            obj = registry.store.get_object(object_id)
            if obj is not None:
                return registry, obj
        raise ObjectNotFoundError(object_id, "object not found in any federated registry")

    # -- selective replication ------------------------------------------------------------

    def replicate(
        self,
        object_id: str,
        *,
        to: RegistryServer,
        session: Session,
    ) -> RegistryObject:
        """Copy one object (selective replication) into registry *to*.

        The replica keeps the source ``home`` so consumers can tell it is a
        replica, per ebRS replication semantics.
        """
        source, obj = self.resolve(object_id)
        if to.home == source.home:
            raise InvalidRequestError("cannot replicate an object onto its home registry")
        replica = obj.copy()
        replica.home = source.home
        replica.owner = None
        to.lcm.submit_objects(session, [replica])
        return to.store.get_object(replica.id)  # type: ignore[return-value]
