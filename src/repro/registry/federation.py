"""Registry federation: replication links, shard routing, federated discovery.

Table 1.1 credits ebXML registries with *federated queries* and *object
references between registries*; PAPERS.md "On the Cooperation of Independent
Registries" motivates the full topology this module implements — a cluster
of cooperating registries that partitions ownership, replicates committed
writes, and serves discovery from any member:

* :class:`ShardMap` — a consistent-hash ring (stable ``sha1`` hashing,
  virtual nodes) assigning every object id an **owning member**.  Adding or
  removing a member only remaps the ids adjacent to its virtual nodes.
* :class:`ReplicationLink` — tails one member's append-only
  :class:`~repro.persistence.changelog.ChangeLog` (PR 7's write spine) into
  a follower store with an explicit **watermark**: eventual consistency with
  an observable, bounded lag (``last_seq - watermark``).  Rollback barriers
  never replicate — rolled-back transactions buffer their records and flush
  nothing, so the log a link tails contains committed mutations only.
* :class:`RouteInterceptor` — a ``route`` stage inserted into the kernel
  chain between ``resolve`` and ``dispatch``.  Any protocol edge of any
  member serves locally-held objects directly and transparently forwards
  misses to the owning member over the shared SOAP transport (the
  transport's :class:`~repro.soap.transport.RetryPolicy` applies).
  Forwarding is single-hop: forwarded envelopes carry a marker header and
  are always served locally by the receiver.
* :class:`RegistryFederation` — membership, the shared transport with one
  SOAP endpoint per member, federated queries and cross-registry resolve
  that go **through the kernel pipeline** (so federated reads appear in
  ``pipeline_stats`` and the request-latency histogram), and the selective
  per-object replication ebRS allows (kept for compatibility; bulk
  replication is the links' job).
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.persistence.changelog import OP_DELETE, OP_INSERT, OP_RESET, OP_SAVE
from repro.registry.server import RegistryServer
from repro.rim import RegistryObject
from repro.security.authn import Session
from repro.util.errors import InvalidRequestError, ObjectNotFoundError

if TYPE_CHECKING:  # pragma: no cover
    from repro.persistence.changelog import ChangeRecord
    from repro.registry.kernel import RegistryKernel, RequestContext
    from repro.soap.transport import SimTransport


@dataclass(frozen=True)
class FederatedRow:
    """One federated query result row, tagged with its home registry."""

    home: str
    row: dict[str, Any]


# -- consistent-hash shard map -------------------------------------------------


class ShardMap:
    """Consistent-hash ring over member homes, keyed by object id.

    Hashing uses ``sha1`` (not Python's per-process-randomized ``hash``), so
    ownership is stable across processes and runs — a forwarded request and
    a CI re-run agree on the owner.  Each member contributes
    ``virtual_nodes`` ring points, smoothing the key distribution.
    """

    def __init__(self, *, virtual_nodes: int = 64) -> None:
        if virtual_nodes < 1:
            raise ValueError("virtual_nodes must be >= 1")
        self.virtual_nodes = virtual_nodes
        self._ring: list[tuple[int, str]] = []
        self._hashes: list[int] = []
        self._members: set[str] = set()

    @staticmethod
    def _hash(key: str) -> int:
        return int.from_bytes(hashlib.sha1(key.encode("utf-8")).digest()[:8], "big")

    def _rebuild(self) -> None:
        ring = []
        for home in self._members:
            for point in range(self.virtual_nodes):
                ring.append((self._hash(f"{home}#{point}"), home))
        ring.sort()
        self._ring = ring
        self._hashes = [h for h, _ in ring]

    def add_member(self, home: str) -> None:
        self._members.add(home)
        self._rebuild()

    def remove_member(self, home: str) -> None:
        self._members.discard(home)
        self._rebuild()

    def members(self) -> list[str]:
        return sorted(self._members)

    def owner(self, object_id: str) -> str | None:
        """The member owning *object_id* (``None`` on an empty ring)."""
        if not self._ring:
            return None
        index = bisect.bisect_right(self._hashes, self._hash(object_id))
        if index == len(self._ring):
            index = 0
        return self._ring[index][1]

    def spread(self, object_ids: list[str]) -> dict[str, int]:
        """Owner → count over a sample of ids (placement diagnostics)."""
        counts: dict[str, int] = {home: 0 for home in self._members}
        for object_id in object_ids:
            owner = self.owner(object_id)
            if owner is not None:
                counts[owner] += 1
        return dict(sorted(counts.items()))

    def stats(self) -> dict[str, Any]:
        return {
            "members": len(self._members),
            "virtual_nodes": self.virtual_nodes,
            "ring_points": len(self._ring),
        }


# -- changelog-tailed replication ----------------------------------------------


class ReplicationLink:
    """Pumps one member's committed changelog records into a follower store.

    The link holds an explicit **watermark** — the highest source sequence
    number it has consumed — and applies records idempotently (upsert for
    insert/save, guarded delete), so re-pumping or overlapping pumps
    converge.  Three record classes advance the watermark without applying:

    * ``reset`` barriers — a rolled-back transaction's records never reached
      the log (they buffer until commit), and the barrier itself carries no
      mutation; replicating it would be meaningless;
    * records whose object ``home`` is not the source's — those are replicas
      the source itself received over another link (replicating them again
      would echo forever around a mesh) and are delivered by their own home
      member's links;
    * records without a ``home`` — member-local infrastructure objects
      (users, credentials, audit trail) that never replicate.

    The link also subscribes to the source changelog, so :attr:`notified`
    counts appends seen since attach — a cheap "work is pending" signal the
    cluster supervisor can poll without touching the record list.  The
    subscription callback only increments a counter: applying records from
    inside an append (which runs under the source's writer lock) could
    deadlock two stores against each other, so actual apply work always
    happens in an explicit :meth:`pump`.
    """

    def __init__(self, source: RegistryServer, target: RegistryServer) -> None:
        if source.home == target.home:
            raise InvalidRequestError("cannot replicate a registry onto itself")
        self.source = source
        self.target = target
        self.watermark = 0
        self.applied = 0
        self.skipped_barriers = 0
        self.filtered = 0
        self.pumps = 0
        self.notified = 0
        self._subscription = source.store.changelog.subscribe(self._on_append)

    # -- subscription ----------------------------------------------------------

    def _on_append(self, record: "ChangeRecord") -> None:
        self.notified += 1

    def close(self) -> None:
        self.source.store.changelog.unsubscribe(self._subscription)

    # -- the consistency model -------------------------------------------------

    def lag(self) -> int:
        """Records committed at the source but not yet consumed here."""
        return self.source.store.changelog.last_seq - self.watermark

    @staticmethod
    def _record_home(record: "ChangeRecord") -> str | None:
        if record.payload is not None:
            return record.payload.home
        if record.previous is not None:
            return record.previous.home
        return None

    def pump(self, max_records: int | None = None) -> int:
        """Consume up to *max_records* new source records; return applied count.

        Bounded pumps give the eventual-consistency model its knob: a
        supervisor pumping ``max_records`` per tick bounds per-tick work,
        while :meth:`lag` stays an honest measure of how far behind the
        follower is.
        """
        self.pumps += 1
        records = self.source.store.changelog.records_since(self.watermark)
        if max_records is not None:
            records = records[:max_records]
        applied = 0
        for record in records:
            self.watermark = record.seq
            if record.op == OP_RESET:
                self.skipped_barriers += 1
                continue
            if self._record_home(record) != self.source.home:
                self.filtered += 1
                continue
            if record.op in (OP_INSERT, OP_SAVE):
                self.target.store.save_object(record.payload)
            elif record.op == OP_DELETE:
                if self.target.store.contains(record.object_id):
                    self.target.store.delete_object(record.object_id)
            applied += 1
        self.applied += applied
        return applied

    def stats(self) -> dict[str, Any]:
        return {
            "source": self.source.home,
            "target": self.target.home,
            "watermark": self.watermark,
            "lag": self.lag(),
            "applied": self.applied,
            "skipped_barriers": self.skipped_barriers,
            "filtered": self.filtered,
            "pumps": self.pumps,
            "notified": self.notified,
        }


# -- kernel shard routing ------------------------------------------------------

#: operation name → object-id extractor for requests the shard map can route
_ROUTABLE_OPERATIONS = {
    "getRegistryObject": lambda body: body.object_id,
    "getServiceBindings": lambda body: body.service_id,
}


class RouteInterceptor:
    """The ``route`` kernel stage: serve local objects, forward shard misses.

    Sits between ``resolve`` and ``dispatch`` in the owning member's chain.
    Requests for objects present in the local store (natively owned *or*
    replicated in — replication makes every member a read replica with
    bounded staleness) proceed to local dispatch; requests for objects this
    member does not hold are forwarded to the shard owner's SOAP endpoint
    over the federation transport, and the owner's response is returned as
    this request's response.  Remote faults re-raise as their typed
    :class:`~repro.util.errors.RegistryError`, so the local edge's fault
    mapper renders them exactly as a locally-raised fault.
    """

    name = "route"

    def __init__(self, federation: "RegistryFederation", registry: RegistryServer) -> None:
        from repro.soap.envelope import SoapEnvelope, SoapFault

        self.federation = federation
        self.registry = registry
        self._envelope_cls = SoapEnvelope
        self._fault_cls = SoapFault
        self.local = 0
        self.forwarded: dict[str, int] = {}
        self.forwarded_served = 0
        self.forward_faults = 0
        #: wall time spent inside forwarding transport calls (hop component
        #: of the cost-attribution plane; += is near-exact under the GIL)
        self.forward_hop_total_s = 0.0

    def __call__(
        self, kernel: "RegistryKernel", ctx: "RequestContext", proceed: Any
    ) -> Any:
        spec = ctx.spec
        extract = _ROUTABLE_OPERATIONS.get(spec.name) if spec is not None else None
        if extract is None:
            return proceed()
        if ctx.tags.get("forwarded_by"):
            # single-hop forwarding: the sender already decided we own this
            self.forwarded_served += 1
            ctx.tags["route"] = "forwarded-serve"
            return proceed()
        object_id = extract(ctx.body)
        if self.registry.store.contains(object_id):
            self.local += 1
            ctx.tags["route"] = "local"
            return proceed()
        owner = self.federation.shard_map.owner(object_id)
        if owner is None or owner == self.registry.home:
            # authoritative miss: we own the shard (or there is no ring) —
            # dispatch locally and let the operation fault as it would alone
            self.local += 1
            ctx.tags["route"] = "local"
            return proceed()
        endpoint = self.federation.endpoint_for(owner)
        if endpoint is None:
            self.local += 1
            ctx.tags["route"] = "local"
            return proceed()
        ctx.tags["route"] = "forwarded"
        ctx.tags["route_owner"] = owner
        self.forwarded[owner] = self.forwarded.get(owner, 0) + 1
        envelope = self._envelope_cls.with_session(
            ctx.body, ctx.token, traceparent=self._traceparent(kernel)
        )
        envelope.headers[self._envelope_cls.FORWARDED_HEADER] = self.registry.home
        hop_started = kernel.clock.now()
        try:
            response = self.federation.transport.request(
                endpoint, envelope, source=self.registry.home
            )
        finally:
            # the forward_hop cost component: wire + owner-side execution,
            # measured on the kernel clock so it subtracts cleanly from the
            # route stage's time; tagged on the stage:route span when tracing
            hop = kernel.clock.now() - hop_started
            self.forward_hop_total_s += hop
            ctx.tags["forward_hop_s"] = ctx.tags.get("forward_hop_s", 0.0) + hop
            tracer = kernel._tracer
            if tracer is not None and tracer.enabled:
                span = tracer.current_span()
                if span is not None:
                    span.tags["forward_hop_s"] = hop
                    span.tags["forward_owner"] = owner
        if isinstance(response, self._fault_cls):
            self.forward_faults += 1
            response.raise_()
        ctx.response = response
        return response

    @staticmethod
    def _traceparent(kernel: "RegistryKernel") -> str | None:
        tracer = kernel._tracer
        if tracer is not None and tracer.enabled:
            return tracer.current_traceparent()
        return None

    def stats(self) -> dict[str, Any]:
        return {
            "local": self.local,
            "forwarded": sum(self.forwarded.values()),
            "forwarded_by_owner": dict(sorted(self.forwarded.items())),
            "forwarded_served": self.forwarded_served,
            "forward_faults": self.forward_faults,
            "forward_hop_total_s": self.forward_hop_total_s,
        }


# -- the federation ------------------------------------------------------------


@dataclass
class _Member:
    registry: RegistryServer
    endpoint: str
    router: RouteInterceptor = field(repr=False, default=None)  # type: ignore[assignment]


class RegistryFederation:
    """A named group of cooperating registries sharing one SOAP transport.

    Joining a member registers its SOAP binding on the shared transport,
    adds it to the consistent-hash :class:`ShardMap`, and installs a
    :class:`RouteInterceptor` between ``resolve`` and ``dispatch`` in its
    kernel chain — after which every member transparently serves or
    forwards any routable request.  Replication links are created with
    :meth:`link` (or :meth:`link_all` for the full mesh) and pumped with
    :meth:`pump_replication`.
    """

    def __init__(
        self,
        name: str,
        *,
        transport: "SimTransport | None" = None,
        virtual_nodes: int = 64,
    ) -> None:
        self.name = name
        self._members: dict[str, _Member] = {}
        self._links: list[ReplicationLink] = []
        self.shard_map = ShardMap(virtual_nodes=virtual_nodes)
        if transport is None:
            from repro.soap.transport import RetryPolicy, SimTransport

            # forwarded requests ride the standard client mini-chain: a
            # transient member hiccup retries with backoff before surfacing
            transport = SimTransport(retry=RetryPolicy(max_attempts=3))
        self.transport = transport

    # -- membership ------------------------------------------------------------

    def join(self, registry: RegistryServer) -> None:
        from repro.soap.binding import SoapRegistryBinding

        if registry.home in self._members:
            raise InvalidRequestError(f"registry already federated: {registry.home}")
        binding = SoapRegistryBinding(registry)
        self.transport.register_endpoint(binding.endpoint_uri, binding.handle)
        router = RouteInterceptor(self, registry)
        registry.kernel.add_interceptor(router, after="resolve")
        registry.telemetry.register_source("route", router.stats)
        self._members[registry.home] = _Member(
            registry=registry, endpoint=binding.endpoint_uri, router=router
        )
        self.shard_map.add_member(registry.home)

    def leave(self, registry: RegistryServer) -> None:
        member = self._members.pop(registry.home, None)
        if member is None:
            return
        self.shard_map.remove_member(registry.home)
        self.transport.unregister_endpoint(member.endpoint)
        registry.kernel.remove_interceptor("route")
        registry.telemetry.unregister_source("route")
        for link in [
            link
            for link in self._links
            if registry.home in (link.source.home, link.target.home)
        ]:
            link.close()
            self._links.remove(link)

    def members(self) -> list[RegistryServer]:
        return [self._members[home].registry for home in sorted(self._members)]

    def member(self, home: str) -> RegistryServer | None:
        member = self._members.get(home)
        return member.registry if member is not None else None

    def endpoint_for(self, home: str) -> str | None:
        member = self._members.get(home)
        return member.endpoint if member is not None else None

    def router_for(self, home: str) -> RouteInterceptor | None:
        member = self._members.get(home)
        return member.router if member is not None else None

    # -- replication -----------------------------------------------------------

    def link(self, source: RegistryServer, target: RegistryServer) -> ReplicationLink:
        """Create (and register) a source → target replication link."""
        for registry in (source, target):
            if registry.home not in self._members:
                raise InvalidRequestError(f"not a federation member: {registry.home}")
        for existing in self._links:
            if (existing.source.home, existing.target.home) == (source.home, target.home):
                return existing
        link = ReplicationLink(source, target)
        self._links.append(link)
        return link

    def link_all(self) -> list[ReplicationLink]:
        """Create the full replication mesh: every member tails every other."""
        members = self.members()
        return [
            self.link(source, target)
            for source in members
            for target in members
            if source.home != target.home
        ]

    def links(self) -> list[ReplicationLink]:
        return list(self._links)

    def pump_replication(self, max_records: int | None = None) -> dict[str, int]:
        """Pump every link once; returns ``"source->target" → applied``."""
        return {
            f"{link.source.home}->{link.target.home}": link.pump(max_records)
            for link in self._links
        }

    def replication_lag(self) -> int:
        """The worst (highest) lag across all links — the SLO gauge."""
        return max((link.lag() for link in self._links), default=0)

    # -- federated query ----------------------------------------------------------

    def federated_query(self, query: str) -> list[FederatedRow]:
        """Run one SQL query against every member, merging tagged results.

        Each member executes the query through its own kernel pipeline (the
        SOAP edge over the shared transport), so federated reads are
        accounted in ``pipeline_stats`` and the request-latency histogram
        exactly like any other request.
        """
        from repro.soap.envelope import SoapEnvelope, SoapFault
        from repro.soap.messages import AdhocQueryRequest

        out: list[FederatedRow] = []
        for registry in self.members():
            envelope = SoapEnvelope(body=AdhocQueryRequest(query=query))
            response = self.transport.request(
                self.endpoint_for(registry.home), envelope, source=f"federation:{self.name}"
            )
            if isinstance(response, SoapFault):
                response.raise_()
            out.extend(FederatedRow(home=registry.home, row=row) for row in response.rows)
        return out

    # -- cross-registry object references ----------------------------------------------

    def resolve(self, object_id: str) -> tuple[RegistryServer, RegistryObject]:
        """Find which member holds *object_id* and return (registry, object).

        Every probe goes through the member's kernel pipeline (marked with
        the forwarded header so the route stage answers locally rather than
        forwarding — a resolve wants actual placement, not shard opinion).
        When several members hold the object (replicas exist), the member
        whose ``home`` matches the object's ``home`` wins: the source
        registry, not whichever replica sorts first.
        """
        from repro.soap.envelope import SoapEnvelope, SoapFault
        from repro.soap.messages import GetRegistryObjectRequest

        holders: list[tuple[RegistryServer, dict[str, Any]]] = []
        for registry in self.members():
            envelope = SoapEnvelope(body=GetRegistryObjectRequest(object_id=object_id))
            envelope.headers[SoapEnvelope.FORWARDED_HEADER] = f"federation:{self.name}"
            response = self.transport.request(
                self.endpoint_for(registry.home), envelope, source=f"federation:{self.name}"
            )
            if isinstance(response, SoapFault):
                if response.fault_code == ObjectNotFoundError.code:
                    continue
                response.raise_()
            holders.append((registry, response.objects[0]))
        if not holders:
            raise ObjectNotFoundError(object_id, "object not found in any federated registry")
        for registry, serialized in holders:
            if serialized.get("home") == registry.home:
                return registry, registry.store.get_object(object_id)  # type: ignore[return-value]
        registry, _ = holders[0]
        return registry, registry.store.get_object(object_id)  # type: ignore[return-value]

    # -- selective replication ------------------------------------------------------------

    def replicate(
        self,
        object_id: str,
        *,
        to: RegistryServer,
        session: Session,
    ) -> RegistryObject:
        """Copy one object (selective replication) into registry *to*.

        The ebRS per-object replication kept for compatibility — bulk
        replication is :class:`ReplicationLink`'s job.  The replica keeps
        the source ``home`` so consumers can tell it is a replica.
        """
        source, obj = self.resolve(object_id)
        if to.home == source.home:
            raise InvalidRequestError("cannot replicate an object onto its home registry")
        replica = obj.copy()
        replica.home = source.home
        replica.owner = None
        to.lcm.submit_objects(session, [replica])
        return to.store.get_object(replica.id)  # type: ignore[return-value]

    # -- observability ---------------------------------------------------------

    def federation_stats(self) -> dict[str, Any]:
        """Membership, shard ring, per-member routing, and link watermarks."""
        return {
            "name": self.name,
            "members": sorted(self._members),
            "shard": self.shard_map.stats(),
            "route": {
                home: member.router.stats()
                for home, member in sorted(self._members.items())
            },
            "replication": [link.stats() for link in self._links],
            "transport": self.transport.transport_stats(),
        }
