"""Taxonomy service: canonical schemes, browsing, validation, discovery.

Implements the "Taxonomy/Classification Support" block of Table 1.1 — the
predefined classification systems UDDI v2 added (Table 1.2: NAICS, UNSPSC,
ISO 3166) plus the ebXML-only capabilities: user-defined taxonomies,
taxonomy *browsing*, classification *validation* against the tree, and
classification-based object discovery.

Canonical trees ship as representative subsets — enough depth (2–3 levels)
to exercise path semantics without embedding entire code lists.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.persistence.dao import DAORegistry
from repro.rim import (
    Classification,
    ClassificationNode,
    ClassificationScheme,
    RegistryObject,
)
from repro.security.authn import Session
from repro.util.errors import InvalidRequestError, ObjectNotFoundError
from repro.util.ids import IdFactory

#: (scheme name, tModel-ish id, {code: (name, {child code: name, …})})
CANONICAL_SCHEMES: dict[str, dict] = {
    "ntis-gov:naics": {
        "description": "North American Industry Classification System",
        "nodes": {
            "11": ("Agriculture, Forestry, Fishing and Hunting", {
                "111": ("Crop Production", {"111330": ("Noncitrus Fruit and Tree Nut Farming", {})}),
            }),
            "51": ("Information", {
                "511": ("Publishing Industries", {"511210": ("Software Publishers", {})}),
                "518": ("Data Processing, Hosting, and Related Services", {}),
            }),
            "61": ("Educational Services", {
                "611": ("Educational Services", {"611310": ("Colleges, Universities, and Professional Schools", {})}),
            }),
        },
    },
    "unspsc-org:unspsc": {
        "description": "Universal Standard Products and Services Classification",
        "nodes": {
            "43": ("Information Technology", {
                "4323": ("Software", {"432315": ("Networking software", {})}),
            }),
            "86": ("Education and Training Services", {}),
        },
    },
    "iso-ch:3166:1999": {
        "description": "ISO 3166 geographic regions",
        "nodes": {
            "US": ("United States", {
                "US-CA": ("California", {}),
                "US-NY": ("New York", {}),
            }),
            "DE": ("Germany", {}),
            "IN": ("India", {}),
        },
    },
}


@dataclass(frozen=True)
class TaxonomyNodeView:
    """Browse-friendly node projection."""

    id: str
    code: str
    name: str
    path: str
    leaf: bool


class TaxonomyService:
    """Scheme installation, browsing, validation, and discovery."""

    def __init__(self, daos: DAORegistry, *, ids: IdFactory) -> None:
        self.daos = daos
        self.ids = ids

    # -- installation -----------------------------------------------------------

    def install_canonical_schemes(self, session: Session, lcm) -> list[ClassificationScheme]:
        """Publish every Table 1.2 scheme with its node tree."""
        return [
            self.install_scheme(session, lcm, name, spec["nodes"], description=spec["description"])
            for name, spec in CANONICAL_SCHEMES.items()
        ]

    def install_scheme(
        self,
        session: Session,
        lcm,
        name: str,
        nodes: dict,
        *,
        description: str = "",
    ) -> ClassificationScheme:
        """Publish one scheme and its tree (user-defined taxonomy support)."""
        scheme = ClassificationScheme(self.ids.new_id(), name=name, description=description)
        lcm.submit_objects(session, [scheme])
        self._install_children(session, lcm, scheme, scheme.id, f"/{name}", nodes)
        return self.daos.classification_schemes.require(scheme.id)

    def _install_children(
        self, session: Session, lcm, scheme: ClassificationScheme, parent_id: str, parent_path: str, nodes: dict
    ) -> None:
        batch: list[ClassificationNode] = []
        children: list[tuple[ClassificationNode, dict]] = []
        for code, (name, grandchildren) in nodes.items():
            node = ClassificationNode(
                self.ids.new_id(),
                code=code,
                parent=parent_id,
                path=f"{parent_path}/{code}",
                name=name,
            )
            batch.append(node)
            children.append((node, grandchildren))
        if batch:
            lcm.submit_objects(session, batch)
            if parent_id == scheme.id:
                stored = self.daos.classification_schemes.require(scheme.id)
                stored.child_node_ids.extend(n.id for n in batch)
                self.daos.classification_schemes.save(stored)
            else:
                stored_parent = self.daos.classification_nodes.require(parent_id)
                stored_parent.child_node_ids.extend(n.id for n in batch)
                self.daos.classification_nodes.save(stored_parent)
        for node, grandchildren in children:
            if grandchildren:
                self._install_children(session, lcm, scheme, node.id, node.path, grandchildren)

    # -- browsing -------------------------------------------------------------------

    def find_scheme(self, name: str) -> ClassificationScheme | None:
        matches = self.daos.classification_schemes.find_by_name(name)
        return matches[0] if matches else None

    def browse(self, parent_id: str) -> list[TaxonomyNodeView]:
        """Children of a scheme or node, as the Web UI's taxonomy browser shows."""
        nodes = self.daos.classification_nodes.children_of(parent_id)
        return [
            TaxonomyNodeView(
                id=n.id,
                code=n.code,
                name=n.name.value,
                path=n.path,
                leaf=not self.daos.classification_nodes.children_of(n.id),
            )
            for n in sorted(nodes, key=lambda n: n.code)
        ]

    def node_by_path(self, path: str) -> ClassificationNode:
        matches = self.daos.classification_nodes.select(lambda n: n.path == path)
        if not matches:
            raise ObjectNotFoundError(path, f"no taxonomy node at path {path!r}")
        return matches[0]

    def scheme_of(self, node: ClassificationNode) -> ClassificationScheme:
        """Walk parents up to the owning scheme."""
        current = node
        for _ in range(100):  # cycle guard
            scheme = self.daos.classification_schemes.get(current.parent)
            if scheme is not None:
                return scheme
            parent = self.daos.classification_nodes.get(current.parent)
            if parent is None:
                raise ObjectNotFoundError(current.parent, "broken taxonomy parent chain")
            current = parent
        raise InvalidRequestError("taxonomy tree too deep or cyclic")

    # -- validation (ebXML-only per Table 1.1) ----------------------------------------------

    def validate_classification(self, classification: Classification) -> None:
        """Reject classifications referencing nonexistent nodes/schemes."""
        if classification.is_internal:
            node = self.daos.classification_nodes.get(classification.classification_node)
            if node is None:
                raise InvalidRequestError(
                    f"classification references unknown node {classification.classification_node}"
                )
        else:
            scheme = self.daos.classification_schemes.get(
                classification.classification_scheme
            )
            if scheme is None:
                raise InvalidRequestError(
                    f"classification references unknown scheme {classification.classification_scheme}"
                )
            if scheme.is_internal:
                raise InvalidRequestError(
                    "external-style classification against an internal scheme; "
                    "reference a node id instead"
                )

    # -- classification helpers -----------------------------------------------------------------

    def classify(
        self, session: Session, lcm, obj: RegistryObject, node: ClassificationNode
    ) -> Classification:
        classification = Classification(
            self.ids.new_id(), classified_object=obj.id, classification_node=node.id
        )
        self.validate_classification(classification)
        lcm.submit_objects(session, [classification])
        return classification

    def find_objects_classified_under(self, path_prefix: str) -> list[RegistryObject]:
        """Discovery by taxonomy subtree: objects classified at/under a path."""
        node_ids = {
            n.id
            for n in self.daos.classification_nodes.select(
                lambda n: n.path == path_prefix or n.path.startswith(path_prefix + "/")
            )
        }
        out: dict[str, RegistryObject] = {}
        for classification in self.daos.classifications.all():
            if classification.classification_node in node_ids:
                obj = self.daos.store.get_object(classification.classified_object)
                if obj is not None:
                    out[obj.id] = obj
        return sorted(out.values(), key=lambda o: (o.type_name, o.name.value, o.id))
