"""action.xml parsing — the RegistryAccess.dtd document model.

Implements the structure of thesis §3.4.4.2 (Tables 3.3–3.6)::

    <root>
      <action type="publish|access|modify">     <!-- default "access" -->
        <organization [type="delete"]>
          <name>…</name>                         <!-- mandatory -->
          <description [type="add|edit|delete"]> text | <constraint>…</constraint>
          <postaladdress> streetnumber|street|city|state|country|postalcode|type
          <telephone> type|number|areacode|countrycode
          <service [type="add|delete|edit"]>
            <name>…</name>                       <!-- mandatory -->
            <description [type=…]> … </description>
            <accessuri [type="add|delete"]> URI whitespace-separated URIs </accessuri>
          </service>
        </organization>
      </action>
    </root>

Several documents in the thesis whitespace-separate multiple endpoint URLs
inside one ``<accessuri>`` element; the parser splits them.  Both
``<constraint>`` and the DTD's ``<constrain>`` spellings are preserved
verbatim into the description text so the core parser sees them unchanged.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass

from repro.rim import EmailAddress, PostalAddress, TelephoneNumber
from repro.util.errors import AccessXmlError
from repro.util.xmlutil import inner_xml, parse_xml

ACTION_TYPES = ("publish", "access", "modify")
DESCRIPTION_MOD_TYPES = ("add", "edit", "modify", "delete")
SERVICE_MOD_TYPES = ("add", "edit", "delete")
URI_MOD_TYPES = ("add", "delete")


@dataclass(frozen=True)
class DescriptionSpec:
    """A <description> element: raw text (with any constraint block) + mod type."""

    text: str
    mod_type: str | None = None


@dataclass(frozen=True)
class AccessUriSpec:
    """One <accessuri> element (may carry several whitespace-separated URIs)."""

    uris: tuple[str, ...]
    mod_type: str | None = None


@dataclass(frozen=True)
class ServiceSpec:
    name: str
    mod_type: str | None = None
    description: DescriptionSpec | None = None
    access_uris: tuple[AccessUriSpec, ...] = ()

    def all_uris(self) -> list[str]:
        return [uri for spec in self.access_uris for uri in spec.uris]


@dataclass(frozen=True)
class OrganizationSpec:
    name: str
    mod_type: str | None = None
    description: DescriptionSpec | None = None
    postal_address: PostalAddress | None = None
    telephone: TelephoneNumber | None = None
    email: EmailAddress | None = None
    services: tuple[ServiceSpec, ...] = ()


@dataclass(frozen=True)
class ActionSpec:
    action_type: str
    organizations: tuple[OrganizationSpec, ...]


@dataclass(frozen=True)
class ActionDocument:
    actions: tuple[ActionSpec, ...]


def _text(element: ET.Element | None) -> str:
    return (element.text or "").strip() if element is not None else ""


def _parse_description(element: ET.Element) -> DescriptionSpec:
    mod_type = element.get("type")
    if mod_type is not None and mod_type not in DESCRIPTION_MOD_TYPES:
        raise AccessXmlError(f"invalid description type attribute: {mod_type!r}")
    return DescriptionSpec(text=inner_xml(element), mod_type=mod_type)


def _parse_postal_address(element: ET.Element) -> PostalAddress:
    return PostalAddress(
        street_number=_text(element.find("streetnumber")),
        street=_text(element.find("street")),
        city=_text(element.find("city")),
        state=_text(element.find("state")),
        country=_text(element.find("country")),
        postal_code=_text(element.find("postalcode")),
        type=_text(element.find("type")),
    )


def _parse_telephone(element: ET.Element) -> TelephoneNumber:
    number = _text(element.find("number"))
    if not number:
        raise AccessXmlError("<telephone> requires a <number> element")
    return TelephoneNumber(
        number=number,
        country_code=_text(element.find("countrycode")),
        area_code=_text(element.find("areacode")),
        type=_text(element.find("type")) or "OfficePhone",
    )


def _parse_accessuri(element: ET.Element) -> AccessUriSpec:
    mod_type = element.get("type")
    if mod_type is not None and mod_type not in URI_MOD_TYPES:
        raise AccessXmlError(f"invalid accessuri type attribute: {mod_type!r}")
    uris = tuple((element.text or "").split())
    if not uris:
        raise AccessXmlError("<accessuri> requires at least one URI")
    return AccessUriSpec(uris=uris, mod_type=mod_type)


def _parse_service(element: ET.Element) -> ServiceSpec:
    mod_type = element.get("type")
    if mod_type is not None and mod_type not in SERVICE_MOD_TYPES:
        raise AccessXmlError(f"invalid service type attribute: {mod_type!r}")
    name = _text(element.find("name"))
    if not name:
        raise AccessXmlError("<service> requires a non-empty <name>")
    description_el = element.find("description")
    description = _parse_description(description_el) if description_el is not None else None
    access_uris = tuple(_parse_accessuri(el) for el in element.findall("accessuri"))
    return ServiceSpec(
        name=name, mod_type=mod_type, description=description, access_uris=access_uris
    )


def _parse_email(element: ET.Element) -> EmailAddress:
    address = _text(element.find("address")) or (element.text or "").strip()
    if not address:
        raise AccessXmlError("<email> requires an address")
    return EmailAddress(address=address, type=_text(element.find("type")) or "OfficeEmail")


def _parse_organization(element: ET.Element) -> OrganizationSpec:
    mod_type = element.get("type")
    if mod_type is not None and mod_type != "delete":
        raise AccessXmlError(
            f"organization type attribute supports only 'delete', got {mod_type!r}"
        )
    name = _text(element.find("name"))
    if not name:
        raise AccessXmlError("<organization> requires a non-empty <name>")
    description_el = element.find("description")
    postal_el = element.find("postaladdress")
    telephone_el = element.find("telephone")
    email_el = element.find("email")
    return OrganizationSpec(
        name=name,
        mod_type=mod_type,
        description=_parse_description(description_el) if description_el is not None else None,
        postal_address=_parse_postal_address(postal_el) if postal_el is not None else None,
        telephone=_parse_telephone(telephone_el) if telephone_el is not None else None,
        email=_parse_email(email_el) if email_el is not None else None,
        services=tuple(_parse_service(el) for el in element.findall("service")),
    )


def parse_action_xml(text: str) -> ActionDocument:
    """Parse an action.xml document into its spec tree."""
    root = parse_xml(text, what="action.xml")
    if root.tag != "root":
        raise AccessXmlError(f"action.xml root element must be <root>, got <{root.tag}>")
    actions: list[ActionSpec] = []
    action_elements = root.findall("action")
    if not action_elements:
        raise AccessXmlError("action.xml requires at least one <action>")
    for action_el in action_elements:
        action_type = action_el.get("type", "access")
        if action_type not in ACTION_TYPES:
            raise AccessXmlError(f"invalid action type attribute: {action_type!r}")
        organizations = tuple(
            _parse_organization(el) for el in action_el.findall("organization")
        )
        if not organizations:
            raise AccessXmlError("<action> requires at least one <organization>")
        actions.append(ActionSpec(action_type=action_type, organizations=organizations))
    return ActionDocument(actions=tuple(actions))
