"""connection.xml parsing (thesis §3.4.4.2).

The AccessRegistry API reads its registry connection details from a
connection.xml document::

    <connection>
      <user>
        <alias>gold</alias>
        <password>gold123</password>
      </user>
      <url>https://volta.sdsu.edu:8443/omar/registry/soap</url>
      <keystore>/home/sadhana/omar/3.1/jaxr-ebxml/security/keystore.jks</keystore>
    </connection>

``alias``/``password`` select the credential entry in the client keystore
(the one KeystoreMover placed there); ``url`` names the registry's SOAP
endpoint.  The ``<keystore>`` element is optional — when absent, the
environment's default keystore is used, matching the Java default-keystore
behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import AccessXmlError
from repro.util.xmlutil import child_text, parse_xml, required_child_text


@dataclass(frozen=True)
class ConnectionSpec:
    """Parsed connection.xml contents."""

    alias: str
    password: str
    url: str
    keystore_path: str | None = None


def parse_connection_xml(text: str) -> ConnectionSpec:
    """Parse a connection.xml document."""
    root = parse_xml(text, what="connection.xml")
    if root.tag != "connection":
        raise AccessXmlError(
            f"connection.xml root element must be <connection>, got <{root.tag}>"
        )
    user = root.find("user")
    if user is None:
        raise AccessXmlError("connection.xml requires a <user> element")
    alias = required_child_text(user, "alias", what="user")
    password = required_child_text(user, "password", what="user")
    url = required_child_text(root, "url", what="connection")
    keystore = child_text(root, "keystore")
    return ConnectionSpec(
        alias=alias, password=password, url=url, keystore_path=keystore or None
    )
