"""The AccessRegistry API: XML-driven registry access (thesis §3.4.4.2–3.4.5)."""

from repro.client.access.action_xml import (
    AccessUriSpec,
    ActionDocument,
    ActionSpec,
    DescriptionSpec,
    OrganizationSpec,
    ServiceSpec,
    parse_action_xml,
)
from repro.client.access.connection_xml import ConnectionSpec, parse_connection_xml
from repro.client.access.registry_api import (
    DEFAULT_KEYSTORE_PATH,
    ClientEnvironment,
    Registry,
)

__all__ = [
    "AccessUriSpec",
    "ActionDocument",
    "ActionSpec",
    "DescriptionSpec",
    "OrganizationSpec",
    "ServiceSpec",
    "parse_action_xml",
    "ConnectionSpec",
    "parse_connection_xml",
    "DEFAULT_KEYSTORE_PATH",
    "ClientEnvironment",
    "Registry",
]
