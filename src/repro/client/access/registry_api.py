"""The AccessRegistry ``Registry`` class (thesis §3.4.4.2 / §3.4.5).

Usage mirrors the thesis' Java API exactly::

    registry = Registry("connection.xml", "action.xml", environment=env)
    result = registry.execute()

``execute()`` carries out every action in the action document and returns
the thesis' container-of-lists (Figure 3.51):

* ``result[0]`` — organization ids of organizations **published**;
* ``result[1]`` — organization ids of organizations **modified**;
* ``result[2]`` — **access URIs** fetched by access actions (in the
  load-balanced order the registry returned them).

Sources may be file paths or raw XML text (anything starting with ``<``).
The :class:`ClientEnvironment` replaces the Java runtime environment: it
holds the simulated registry endpoints and the client keystores the
connection.xml references.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.client.access.action_xml import (
    ActionDocument,
    DescriptionSpec,
    OrganizationSpec,
    ServiceSpec,
    parse_action_xml,
)
from repro.client.access.connection_xml import ConnectionSpec, parse_connection_xml
from repro.registry.server import RegistryServer
from repro.rim import (
    Association,
    AssociationType,
    Organization,
    RegistryObject,
    Service,
    ServiceBinding,
)
from repro.security.authn import Session
from repro.security.keystore import Keystore
from repro.util.errors import AccessXmlError

DEFAULT_KEYSTORE_PATH = "~/.keystore"


@dataclass
class ClientEnvironment:
    """The client's runtime environment: registries by URL + keystores by path."""

    registries: dict[str, RegistryServer] = field(default_factory=dict)
    keystores: dict[str, Keystore] = field(default_factory=dict)
    default_keystore_path: str = DEFAULT_KEYSTORE_PATH

    @classmethod
    def for_registry(
        cls, registry: RegistryServer, *, url: str | None = None
    ) -> "ClientEnvironment":
        """Environment with one registry and an empty default keystore."""
        env = cls()
        env.add_registry(registry, url=url)
        env.keystores[env.default_keystore_path] = Keystore()
        return env

    def add_registry(self, registry: RegistryServer, *, url: str | None = None) -> None:
        self.registries[url or registry.home] = registry

    def registry_for(self, url: str) -> RegistryServer:
        registry = self.registries.get(url)
        if registry is None:
            raise AccessXmlError(f"no registry reachable at {url!r}")
        return registry

    def keystore_at(self, path: str | None) -> Keystore:
        keystore = self.keystores.get(path or self.default_keystore_path)
        if keystore is None:
            raise AccessXmlError(f"no client keystore at {path!r}")
        return keystore

    def register_client(
        self,
        alias: str,
        password: str,
        *,
        url: str | None = None,
        keystore_path: str | None = None,
    ) -> ConnectionSpec:
        """Run the full thesis onboarding: wizard + KeystoreMover import.

        Registers *alias* with the registry, stores the issued credential in
        the client keystore under *password*, imports the registryOperator
        trust anchor, and returns a ready ConnectionSpec.
        """
        if url is None:
            if len(self.registries) != 1:
                raise AccessXmlError("url required when multiple registries are known")
            url = next(iter(self.registries))
        registry = self.registry_for(url)
        _, credential = registry.register_user(alias)
        keystore = self.keystore_at(keystore_path)
        keystore.set_entry(alias, credential, password)
        keystore.import_trusted("registryOperator", registry.authority.certificate)
        return ConnectionSpec(
            alias=alias, password=password, url=url, keystore_path=keystore_path
        )


def _load_source(source: str) -> str:
    """Accept a file path or raw XML text."""
    if source.lstrip().startswith("<"):
        return source
    with open(os.path.expanduser(source), "r", encoding="utf-8") as handle:
        return handle.read()


class Registry:
    """The AccessRegistry entry point: parse inputs, connect, execute()."""

    def __init__(
        self,
        connection_source: str | ConnectionSpec,
        action_source: str | ActionDocument,
        *,
        environment: ClientEnvironment,
    ) -> None:
        self.environment = environment
        if isinstance(connection_source, ConnectionSpec):
            self.connection_spec = connection_source
        else:
            self.connection_spec = parse_connection_xml(_load_source(connection_source))
        if isinstance(action_source, ActionDocument):
            self.action_document = action_source
        else:
            self.action_document = parse_action_xml(_load_source(action_source))
        self.registry = environment.registry_for(self.connection_spec.url)
        self._session: Session | None = None

    # -- connection ---------------------------------------------------------

    def _connect(self) -> Session:
        """Authenticate with the keystore credential (trust chain included)."""
        if self._session is not None:
            return self._session
        keystore = self.environment.keystore_at(self.connection_spec.keystore_path)
        credential = keystore.get_entry(
            self.connection_spec.alias, self.connection_spec.password
        )
        if not keystore.trusts(self.registry.authority.certificate):
            raise AccessXmlError(
                "client keystore does not trust the registryOperator certificate; "
                "import Servier.cer first (thesis §3.4.3)"
            )
        self._session = self.registry.login(credential)
        return self._session

    # -- execute ---------------------------------------------------------------

    def execute(self) -> list[list[str]]:
        """Run all actions; returns [published_org_ids, modified_org_ids, uris]."""
        published: list[str] = []
        modified: list[str] = []
        uris: list[str] = []
        for action in self.action_document.actions:
            if action.action_type == "publish":
                for org_spec in action.organizations:
                    published.append(self._publish_organization(org_spec))
            elif action.action_type == "modify":
                for org_spec in action.organizations:
                    modified.append(self._modify_organization(org_spec))
            else:  # access
                for org_spec in action.organizations:
                    uris.extend(self._access_organization(org_spec))
        return [published, modified, uris]

    # -- publish -------------------------------------------------------------------

    def _publish_organization(self, spec: OrganizationSpec) -> str:
        session = self._connect()
        lcm = self.registry.lcm
        org = Organization(
            self.registry.ids.new_id(),
            name=spec.name,
            description=spec.description.text if spec.description else "",
        )
        if spec.postal_address is not None:
            org.addresses.append(spec.postal_address)
        if spec.telephone is not None:
            org.telephones.append(spec.telephone)
        if spec.email is not None:
            org.emails.append(spec.email)
        batch: list[RegistryObject] = [org]
        lcm.submit_objects(session, batch)
        for service_spec in spec.services:
            self._publish_service(session, org, service_spec)
        return org.id

    def _publish_service(self, session: Session, org: Organization, spec: ServiceSpec) -> str:
        lcm = self.registry.lcm
        service = Service(
            self.registry.ids.new_id(),
            name=spec.name,
            description=spec.description.text if spec.description else "",
        )
        objects: list[RegistryObject] = [service]
        for uri in spec.all_uris():
            objects.append(
                ServiceBinding(self.registry.ids.new_id(), service=service.id, access_uri=uri)
            )
        objects.append(
            Association(
                self.registry.ids.new_id(),
                source_object=org.id,
                target_object=service.id,
                association_type=AssociationType.OFFERS_SERVICE,
            )
        )
        lcm.submit_objects(session, objects)
        return service.id

    # -- modify ----------------------------------------------------------------------

    def _find_organization(self, name: str) -> Organization:
        org = self.registry.qm.find_organization_by_name(name)
        if org is None:
            raise AccessXmlError(
                f"organization {name!r} is not published; publish it before modifying"
            )
        return org

    def _find_service(self, org: Organization, name: str) -> Service:
        service = self.registry.qm.find_service_by_name(name, organization=org)
        if service is None:
            raise AccessXmlError(
                f"service {name!r} is not published under organization {org.name.value!r}"
            )
        return service

    def _modify_organization(self, spec: OrganizationSpec) -> str:
        session = self._connect()
        lcm = self.registry.lcm
        org = self._find_organization(spec.name)
        if spec.mod_type == "delete":
            lcm.remove_objects(session, [org.id])
            return org.id
        if spec.description is not None:
            self._modify_description(session, org, spec.description)
        for service_spec in spec.services:
            self._modify_service(session, org, service_spec)
        return org.id

    def _modify_description(
        self, session: Session, obj: RegistryObject, spec: DescriptionSpec
    ) -> None:
        fresh = self.registry.qm.get_registry_object(obj.id)
        if spec.mod_type == "delete":
            fresh.description = type(fresh.description)("")
        else:  # add / edit / modify all rewrite the whole description (Table 3.6 note)
            fresh.description = type(fresh.description)(spec.text)
        self.registry.lcm.update_objects(session, [fresh])

    def _modify_service(self, session: Session, org: Organization, spec: ServiceSpec) -> None:
        lcm = self.registry.lcm
        if spec.mod_type == "add":
            existing = self.registry.qm.find_service_by_name(spec.name, organization=org)
            if existing is not None:
                raise AccessXmlError(
                    f"service {spec.name!r} already exists; cannot add it again"
                )
            self._publish_service(session, org, spec)
            return
        service = self._find_service(org, spec.name)
        if spec.mod_type == "delete":
            lcm.remove_objects(session, [service.id])
            return
        # edit (explicit or implied): apply child modifications
        if spec.description is not None:
            self._modify_description(session, service, spec.description)
        for uri_spec in spec.access_uris:
            if uri_spec.mod_type == "delete":
                self._delete_uris(session, service, uri_spec.uris)
            else:  # add (default)
                self._add_uris(session, service, uri_spec.uris)

    def _add_uris(self, session: Session, service: Service, uris: tuple[str, ...]) -> None:
        existing = {
            b.access_uri
            for b in self.registry.daos.service_bindings.for_service(
                self.registry.daos.services.require(service.id)
            )
        }
        new_bindings = [
            ServiceBinding(self.registry.ids.new_id(), service=service.id, access_uri=uri)
            for uri in uris
            if uri not in existing  # duplicate URIs are ignored (testExecute_DuplicateAccessURI)
        ]
        if new_bindings:
            self.registry.lcm.submit_objects(session, new_bindings)

    def _delete_uris(self, session: Session, service: Service, uris: tuple[str, ...]) -> None:
        fresh = self.registry.daos.services.require(service.id)
        bindings = self.registry.daos.service_bindings.for_service(fresh)
        to_delete = [b.id for b in bindings if b.access_uri in uris]
        if not to_delete:
            raise AccessXmlError(
                f"no bindings with the given URIs on service {service.name.value!r}"
            )
        self.registry.lcm.remove_objects(session, to_delete)

    # -- access -----------------------------------------------------------------------

    def _access_organization(self, spec: OrganizationSpec) -> list[str]:
        org = self._find_organization(spec.name)
        if not spec.services:
            raise AccessXmlError(
                "access actions must name the service(s) to fetch URIs for"
            )
        uris: list[str] = []
        for service_spec in spec.services:
            service = self._find_service(org, service_spec.name)
            uris.extend(self.registry.qm.get_access_uris(service.id))
        return uris
