"""JAXR-style client API (thesis §2.2.2, Figures 2.2/2.3).

The freebXML JAXR provider gives clients Connection / RegistryService /
BusinessLifeCycleManager / BusinessQueryManager objects, and supports two
wire modes:

* ``localCall = False`` (default): every operation is marshalled into an
  ebRS request, wrapped in a SOAP envelope, and sent to the registry's SOAP
  endpoint through the transport;
* ``localCall = True``: the provider bypasses SOAP and calls the registry
  server's QueryManager / LifeCycleManager interfaces directly (the Web-UI
  optimization of §2.2.1).

Both paths are implemented so tests can assert they are observably
equivalent.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.registry.kernel import EdgeProfile, OperationSpec, RequestContext
from repro.registry.server import RegistryServer
from repro.rim import (
    Association,
    AssociationType,
    Organization,
    RegistryObject,
    Service,
    ServiceBinding,
)
from repro.security.authn import Session
from repro.security.certs import Credential
from repro.soap.binding import SoapRegistryBinding
from repro.soap.envelope import SoapEnvelope, SoapFault
from repro.soap.messages import (
    AdhocQueryRequest,
    GetRegistryObjectRequest,
    GetServiceBindingsRequest,
    RegistryResponse,
    RemoveObjectsRequest,
    SubmitObjectsRequest,
    UpdateObjectsRequest,
)
from repro.soap.serializer import deserialize, serialize
from repro.soap.transport import SimTransport
from repro.util.errors import AuthenticationError, RegistryError


def _local_authenticate(ctx: RequestContext, spec: OperationSpec):
    """The in-process edge trusts the connection's established session."""
    if spec.requires_session and ctx.session is None:
        raise AuthenticationError("this operation requires an authenticated connection")
    return ctx.session


#: the in-process JAXR edge: trusted localCall path — no read gate, and
#: faults re-raise unchanged (fault_mapper None) instead of serializing
LOCAL_EDGE = EdgeProfile(
    name="local",
    authenticate=_local_authenticate,
    fault_mapper=None,
    enforce_read_gate=False,
)


@dataclass
class ConnectionFactory:
    """Creates client connections to one registry.

    ``transport`` + the registry's SOAP binding model the remote path; when
    ``local_call`` is True the connection calls the server objects directly.
    ``wire_xml`` serializes every envelope to literal SOAP 1.1 XML on the
    wire (and parses responses back) — the most faithful transport mode.
    """

    registry: RegistryServer
    transport: SimTransport | None = None
    binding: SoapRegistryBinding | None = None
    local_call: bool = False
    wire_xml: bool = False

    def __post_init__(self) -> None:
        if not self.local_call:
            if self.binding is None:
                self.binding = SoapRegistryBinding(self.registry)
            if self.transport is None:
                self.transport = SimTransport()
            if self.wire_xml:
                from repro.soap.xml_binding import envelope_from_xml, envelope_to_xml

                def xml_endpoint(wire_text: str) -> str:
                    envelope = envelope_from_xml(wire_text)
                    response = self.binding.handle(envelope)
                    return envelope_to_xml(SoapEnvelope(body=response))

                self.transport.register_endpoint(self.binding.endpoint_uri, xml_endpoint)
            else:
                self.transport.register_endpoint(
                    self.binding.endpoint_uri, self.binding.handle
                )

    def create_connection(self, credential: Credential | None = None) -> "Connection":
        """Open a connection; without a credential only queries are possible."""
        session: Session | None = None
        if credential is not None:
            session = self.registry.login(credential)
            if self.binding is not None:
                self.binding.register_session(session)
        return Connection(factory=self, session=session)


@dataclass
class Connection:
    factory: ConnectionFactory
    session: Session | None

    def get_registry_service(self) -> "RegistryService":
        return RegistryService(self)

    @property
    def registry(self) -> RegistryServer:
        return self.factory.registry

    # -- wire plumbing -----------------------------------------------------

    def _send(self, body) -> RegistryResponse:
        if self.factory.local_call:
            raise RegistryError("local-call connections do not use the SOAP path")
        assert self.factory.binding is not None and self.factory.transport is not None
        tracer = self.factory.transport.tracer
        if tracer is not None and tracer.enabled:
            # the client-side span: transport attempts/retries nest under it,
            # and its context rides the envelope so the server joins the trace
            with tracer.span("client.send", operation=type(body).__name__):
                return self._send_wire(body, tracer.current_traceparent())
        return self._send_wire(body, None)

    def _send_wire(self, body, traceparent: str | None) -> RegistryResponse:
        envelope = SoapEnvelope.with_session(
            body,
            self.session.token if self.session else None,
            traceparent=traceparent,
        )
        if self.factory.wire_xml:
            from repro.soap.xml_binding import envelope_from_xml, envelope_to_xml

            wire = envelope_to_xml(envelope)
            raw = self.factory.transport.request(
                self.factory.binding.endpoint_uri, wire
            )
            response = envelope_from_xml(raw).body
        else:
            response = self.factory.transport.request(
                self.factory.binding.endpoint_uri, envelope
            )
        if isinstance(response, SoapFault):
            response.raise_()
        return response

    def _require_session(self) -> Session:
        if self.session is None:
            raise AuthenticationError("this operation requires an authenticated connection")
        return self.session

    def _invoke_local(self, name: str, call, *, requires_session: bool = False):
        """Run one local-call operation through the registry kernel.

        The kernel's local edge preserves the pre-kernel in-process
        semantics exactly (no read gate, no serialization, faults re-raise
        unchanged) while the pipeline accounts the request under the
        ``local`` protocol edge in ``pipeline_stats()``.
        """
        spec = OperationSpec(
            name=name,
            requires_session=requires_session,
            handler=lambda ctx: call(ctx.session),
        )
        return self.registry.kernel.execute(
            LOCAL_EDGE, session=self.session, spec=spec
        )


class RegistryService:
    """JAXR RegistryService: access to the two business-level managers."""

    def __init__(self, connection: Connection) -> None:
        self.connection = connection

    def get_business_life_cycle_manager(self) -> "BusinessLifeCycleManager":
        return BusinessLifeCycleManager(self.connection)

    def get_business_query_manager(self) -> "BusinessQueryManager":
        return BusinessQueryManager(self.connection)


class BusinessLifeCycleManager:
    """High-level publish/update/delete operations (JAXR level-0 surface)."""

    def __init__(self, connection: Connection) -> None:
        self.connection = connection
        self._ids = connection.registry.ids

    # -- factory helpers (JAXR create* methods) ---------------------------------

    def create_organization(self, name: str, *, description: str = "") -> Organization:
        return Organization(self._ids.new_id(), name=name, description=description)

    def create_service(self, name: str, *, description: str = "") -> Service:
        return Service(self._ids.new_id(), name=name, description=description)

    def create_service_binding(self, service: Service, access_uri: str) -> ServiceBinding:
        return ServiceBinding(self._ids.new_id(), service=service.id, access_uri=access_uri)

    def create_offers_service_association(
        self, organization: Organization, service: Service
    ) -> Association:
        return Association(
            self._ids.new_id(),
            source_object=organization.id,
            target_object=service.id,
            association_type=AssociationType.OFFERS_SERVICE,
        )

    # -- save / delete ------------------------------------------------------------

    def save_objects(self, objects: list[RegistryObject]) -> list[str]:
        if self.connection.factory.local_call:
            return self.connection._invoke_local(
                "submitObjects",
                lambda session: self.connection.registry.lcm.submit_objects(
                    session, objects
                ),
                requires_session=True,
            )
        response = self.connection._send(
            SubmitObjectsRequest(objects=[serialize(o) for o in objects])
        )
        return response.ids

    def update_objects(self, objects: list[RegistryObject]) -> list[str]:
        if self.connection.factory.local_call:
            return self.connection._invoke_local(
                "updateObjects",
                lambda session: self.connection.registry.lcm.update_objects(
                    session, objects
                ),
                requires_session=True,
            )
        response = self.connection._send(
            UpdateObjectsRequest(objects=[serialize(o) for o in objects])
        )
        return response.ids

    def delete_objects(self, ids: list[str]) -> list[str]:
        if self.connection.factory.local_call:
            return self.connection._invoke_local(
                "removeObjects",
                lambda session: self.connection.registry.lcm.remove_objects(
                    session, ids
                ),
                requires_session=True,
            )
        response = self.connection._send(RemoveObjectsRequest(ids=ids))
        return response.ids

    # -- composite convenience ----------------------------------------------------

    def publish_organization_with_services(
        self,
        organization: Organization,
        services: list[tuple[Service, list[ServiceBinding]]],
    ) -> list[str]:
        """Publish an organization, its services, bindings and associations."""
        objects: list[RegistryObject] = [organization]
        for service, bindings in services:
            objects.append(service)
        saved = self.save_objects(objects)
        extras: list[RegistryObject] = []
        for service, bindings in services:
            extras.extend(bindings)
            extras.append(
                self.create_offers_service_association(organization, service)
            )
        if extras:
            saved += self.save_objects(extras)
        return saved


class BusinessQueryManager:
    """High-level discovery operations."""

    def __init__(self, connection: Connection) -> None:
        self.connection = connection

    def get_registry_object(self, object_id: str) -> RegistryObject:
        if self.connection.factory.local_call:
            return self.connection._invoke_local(
                "getRegistryObject",
                lambda _s: self.connection.registry.qm.get_registry_object(object_id),
            )
        response = self.connection._send(GetRegistryObjectRequest(object_id=object_id))
        return deserialize(response.objects[0])

    def find_organizations(self, name_pattern: str) -> list[Organization]:
        if self.connection.factory.local_call:
            return self.connection._invoke_local(
                "findOrganizations",
                lambda _s: self.connection.registry.qm.find_organizations(name_pattern),
            )
        escaped = name_pattern.replace("'", "''")
        response = self.connection._send(
            AdhocQueryRequest(
                query=f"SELECT id FROM Organization WHERE name LIKE '{escaped}' ORDER BY name"
            )
        )
        return [self.get_registry_object(row["id"]) for row in response.rows]  # type: ignore[misc]

    def find_services(self, name_pattern: str) -> list[Service]:
        if self.connection.factory.local_call:
            return self.connection._invoke_local(
                "findServices",
                lambda _s: self.connection.registry.qm.find_services(name_pattern),
            )
        escaped = name_pattern.replace("'", "''")
        response = self.connection._send(
            AdhocQueryRequest(
                query=f"SELECT id FROM Service WHERE name LIKE '{escaped}' ORDER BY name"
            )
        )
        return [self.get_registry_object(row["id"]) for row in response.rows]  # type: ignore[misc]

    def get_service_bindings(self, service_id: str) -> list[ServiceBinding]:
        """Load-balanced binding discovery (the thesis' modified answer)."""
        if self.connection.factory.local_call:
            return self.connection._invoke_local(
                "getServiceBindings",
                lambda _s: self.connection.registry.qm.get_service_bindings(service_id),
            )
        response = self.connection._send(GetServiceBindingsRequest(service_id=service_id))
        return [deserialize(data) for data in response.objects]  # type: ignore[list-item]

    def get_access_uris(self, service_id: str) -> list[str]:
        return [
            b.access_uri for b in self.get_service_bindings(service_id) if b.access_uri
        ]
