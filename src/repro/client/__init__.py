"""Client APIs: the JAXR-style provider and the AccessRegistry XML API."""

from repro.client.access import ClientEnvironment, Registry
from repro.client.jaxr import (
    BusinessLifeCycleManager,
    BusinessQueryManager,
    Connection,
    ConnectionFactory,
    RegistryService,
)

__all__ = [
    "ClientEnvironment",
    "Registry",
    "BusinessLifeCycleManager",
    "BusinessQueryManager",
    "Connection",
    "ConnectionFactory",
    "RegistryService",
]
