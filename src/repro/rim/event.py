"""AuditableEvent: the registry's audit trail (ebRIM §1.3.2.3).

Every LifeCycleManager action appends one AuditableEvent per affected object,
recording who did what when.  The event stream also feeds the subscription /
notification subsystem (§1.3.2.5).
"""

from __future__ import annotations

import enum

from repro.rim.base import RegistryObject
from repro.util.errors import InvalidRequestError


class EventType(enum.Enum):
    """Canonical auditable event types."""

    CREATED = "Created"
    UPDATED = "Updated"
    APPROVED = "Approved"
    DEPRECATED = "Deprecated"
    UNDEPRECATED = "Undeprecated"
    DELETED = "Deleted"
    VERSIONED = "Versioned"
    RELOCATED = "Relocated"

    @property
    def urn(self) -> str:
        return f"urn:oasis:names:tc:ebxml-regrep:EventType:{self.value}"


class AuditableEvent(RegistryObject):
    """One audit-trail record: (event type, affected object, user, timestamp)."""

    OBJECT_TYPE = "urn:oasis:names:tc:ebxml-regrep:ObjectType:AuditableEvent"

    def __init__(
        self,
        id: str,
        *,
        event_type: EventType,
        affected_object: str,
        user_id: str,
        timestamp: float,
        request_id: str | None = None,
        **kwargs,
    ) -> None:
        super().__init__(id, **kwargs)
        if not affected_object:
            raise InvalidRequestError("auditable event requires an affected object id")
        self.event_type = event_type
        self.affected_object = affected_object
        self.user_id = user_id
        self.timestamp = float(timestamp)
        self.request_id = request_id
        #: registry-assigned monotonic sequence (total order within one registry)
        self.sequence = 0
