"""RegistryObject — the abstract base of the ebRIM information model.

Everything stored in an ebXML registry (organizations, services, bindings,
associations, classification schemes, audit events, users, …) derives from
RegistryObject, which carries:

* ``id`` — the globally unique ``urn:uuid:`` identifier;
* ``lid`` — the logical id shared by all versions of the same object;
* ``object_type`` — a canonical type URN (see :mod:`repro.rim.objecttype`);
* ``name`` / ``description`` — InternationalStrings;
* ``status`` — life-cycle state;
* ``version`` — automatic version info maintained by the LifeCycleManager;
* ``slots`` — dynamic extension attributes;
* ``owner`` — id of the submitting User (drives access control);
* ``home`` — the home registry URL (federation support).

The class is deliberately a plain mutable object, not a dataclass: the DAO
layer snapshots/copies instances explicitly and identity semantics are by
``id``.
"""

from __future__ import annotations


from repro.rim.slots import Slot, SlotMap
from repro.rim.status import ObjectStatus
from repro.rim.strings import InternationalString
from repro.util.errors import InvalidRequestError
from repro.util.ids import is_urn_uuid

class VersionInfo:
    """Automatic version metadata (ebRS versioning feature, Table 1.1)."""

    __slots__ = ("version_name", "comment")

    def __init__(self, version_name: str = "1.1", comment: str = "") -> None:
        self.version_name = version_name
        self.comment = comment

    def next(self, comment: str = "") -> "VersionInfo":
        """Return the successor version (minor increments: 1.1 → 1.2)."""
        major, _, minor = self.version_name.partition(".")
        try:
            bumped = f"{major}.{int(minor or 0) + 1}"
        except ValueError:
            bumped = self.version_name + ".1"
        return VersionInfo(bumped, comment)

    def copy(self) -> "VersionInfo":
        return VersionInfo(self.version_name, self.comment)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"VersionInfo({self.version_name!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, VersionInfo) and other.version_name == self.version_name
        )

    def __hash__(self) -> int:
        return hash(self.version_name)


class RegistryObject:
    """Base class for all ebRIM model objects."""

    #: Canonical object-type URN; subclasses override.
    OBJECT_TYPE = "urn:oasis:names:tc:ebxml-regrep:ObjectType:RegistryObject"

    def __init__(
        self,
        id: str,
        *,
        name: InternationalString | str | None = None,
        description: InternationalString | str | None = None,
        lid: str | None = None,
        owner: str | None = None,
        home: str | None = None,
    ) -> None:
        if not is_urn_uuid(id):
            raise InvalidRequestError(f"registry object id must be urn:uuid: {id!r}")
        self.id = id
        self.lid = lid or id
        self.name = InternationalString.of(name)
        self.description = InternationalString.of(description)
        self.status = ObjectStatus.SUBMITTED
        self.version = VersionInfo()
        self.slots = SlotMap()
        self.owner = owner
        self.home = home
        #: ids of Classification objects applied to this object
        self.classification_ids: list[str] = []
        #: ids of ExternalIdentifier objects attached to this object
        self.external_identifier_ids: list[str] = []

    # -- type metadata -------------------------------------------------

    @property
    def object_type(self) -> str:
        return type(self).OBJECT_TYPE

    @property
    def type_name(self) -> str:
        """Short class name used by the persistence layer as a table key."""
        return type(self).__name__

    # -- slots convenience ---------------------------------------------

    def add_slot(self, name: str, *values: str, slot_type: str | None = None) -> None:
        self.slots.add(Slot(name=name, values=list(values), slot_type=slot_type))

    def slot_value(self, name: str, default: str | None = None) -> str | None:
        return self.slots.value(name, default)

    # -- copying ---------------------------------------------------------

    def copy(self) -> "RegistryObject":
        """Deep-enough copy used by the DAO layer (value attributes copied)."""
        clone = type(self).__new__(type(self))
        clone.__dict__.update(self.__dict__)
        self._copy_into(clone)
        return clone

    def _copy_into(self, clone: "RegistryObject") -> None:
        """Copy mutable value attributes; subclasses extend."""
        clone.name = self.name.copy()
        clone.description = self.description.copy()
        clone.version = self.version.copy()
        clone.slots = self.slots.copy()
        clone.classification_ids = list(self.classification_ids)
        clone.external_identifier_ids = list(self.external_identifier_ids)

    # -- identity ---------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, RegistryObject) and other.id == self.id

    def __hash__(self) -> int:
        return hash(self.id)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(id={self.id!r}, name={self.name.value!r})"


class RegistryEntry(RegistryObject):
    """Marker subclass for objects with full life-cycle support (ebRIM 2.x lineage).

    ClassificationScheme, RegistryPackage and Service are RegistryEntries in
    the thesis' Figure 1.18; the distinction matters only for documentation
    and for the expiration/stability attributes kept here.
    """

    OBJECT_TYPE = "urn:oasis:names:tc:ebxml-regrep:ObjectType:RegistryEntry"

    def __init__(self, id: str, **kwargs) -> None:
        super().__init__(id, **kwargs)
        self.expiration: float | None = None
        self.stability: str = "Dynamic"
