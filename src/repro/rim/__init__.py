"""ebRIM — the ebXML Registry Information Model, in Python.

This package reproduces the ~25 standard metadata classes of OASIS ebRIM 3.0
as used by freebXML (thesis Figure 1.18): the RegistryObject base with slots,
versioning and life-cycle status; parties (User, Organization with postal /
email / telephone entities); services (Service, ServiceBinding,
SpecificationLink); taxonomy support (ClassificationScheme / Node /
Classification); relationships (Association with the Table 1.5 predefined
types); grouping (RegistryPackage); identifiers and links (ExternalIdentifier,
ExternalLink); the audit trail (AuditableEvent); and discovery / notification
objects (AdhocQuery, Subscription).
"""

from repro.rim.adhoc import (
    QUERY_LANGUAGE_FILTER,
    QUERY_LANGUAGE_SQL,
    AdhocQuery,
    NotifyAction,
    Subscription,
)
from repro.rim.association import Association, AssociationType
from repro.rim.base import RegistryEntry, RegistryObject, VersionInfo
from repro.rim.classification import (
    Classification,
    ClassificationNode,
    ClassificationScheme,
)
from repro.rim.event import AuditableEvent, EventType
from repro.rim.external import ExternalIdentifier, ExternalLink
from repro.rim.extrinsic import ExtrinsicObject
from repro.rim.package import RegistryPackage
from repro.rim.party import (
    EmailAddress,
    Organization,
    PersonName,
    PostalAddress,
    TelephoneNumber,
    User,
)
from repro.rim.service import Service, ServiceBinding, SpecificationLink, host_of_uri
from repro.rim.slots import Slot, SlotMap
from repro.rim.status import ObjectStatus, check_transition
from repro.rim.strings import InternationalString, LocalizedString

#: All concrete RegistryObject subclasses, keyed by short type name — the
#: persistence layer derives one DAO/table per entry.
CONCRETE_TYPES: dict[str, type[RegistryObject]] = {
    cls.__name__: cls
    for cls in (
        Association,
        AuditableEvent,
        AdhocQuery,
        Classification,
        ClassificationNode,
        ClassificationScheme,
        ExternalIdentifier,
        ExternalLink,
        ExtrinsicObject,
        Organization,
        RegistryPackage,
        Service,
        ServiceBinding,
        SpecificationLink,
        Subscription,
        User,
    )
}

__all__ = [
    "QUERY_LANGUAGE_FILTER",
    "QUERY_LANGUAGE_SQL",
    "AdhocQuery",
    "NotifyAction",
    "Subscription",
    "Association",
    "AssociationType",
    "RegistryEntry",
    "RegistryObject",
    "VersionInfo",
    "Classification",
    "ClassificationNode",
    "ClassificationScheme",
    "AuditableEvent",
    "EventType",
    "ExternalIdentifier",
    "ExternalLink",
    "ExtrinsicObject",
    "RegistryPackage",
    "EmailAddress",
    "Organization",
    "PersonName",
    "PostalAddress",
    "TelephoneNumber",
    "User",
    "Service",
    "ServiceBinding",
    "SpecificationLink",
    "host_of_uri",
    "Slot",
    "SlotMap",
    "ObjectStatus",
    "check_transition",
    "InternationalString",
    "LocalizedString",
    "CONCRETE_TYPES",
]
