"""Service, ServiceBinding, and SpecificationLink.

The heart of service discovery: a Service owns a collection of
ServiceBindings, each of which carries one **access URI** — the endpoint a
client will invoke.  The load-balancing scheme (thesis §3.2) reorders and
filters exactly these bindings at query time, so the binding collection
preserves insertion order (the "publisher order" a vanilla registry would
return).
"""

from __future__ import annotations

from repro.rim.base import RegistryEntry, RegistryObject
from repro.util.errors import InvalidRequestError


class Service(RegistryEntry):
    """A published Web Service.

    Per the thesis, performance constraints are embedded in the service's
    *description* field as a ``<constraint>`` XML block; the core package
    parses them from :attr:`RegistryObject.description`, so no schema change
    is needed here — exactly mirroring how the scheme stayed transparent in
    freebXML.
    """

    OBJECT_TYPE = "urn:oasis:names:tc:ebxml-regrep:ObjectType:Service"

    def __init__(self, id: str, *, provider: str | None = None, **kwargs) -> None:
        super().__init__(id, **kwargs)
        #: owning Organization id (cached from the OffersService association)
        self.provider = provider
        #: ordered ServiceBinding ids (publisher order)
        self.binding_ids: list[str] = []

    def _copy_into(self, clone: "RegistryObject") -> None:
        super()._copy_into(clone)
        clone.binding_ids = list(self.binding_ids)

    def add_binding(self, binding_id: str) -> None:
        if binding_id in self.binding_ids:
            raise InvalidRequestError(f"binding already attached: {binding_id}")
        self.binding_ids.append(binding_id)

    def remove_binding(self, binding_id: str) -> None:
        if binding_id not in self.binding_ids:
            raise InvalidRequestError(f"binding not attached: {binding_id}")
        self.binding_ids.remove(binding_id)


class ServiceBinding(RegistryObject):
    """Technical information for accessing one interface of a Service.

    ``access_uri`` is the endpoint URL; ``target_binding`` optionally points
    at another ServiceBinding instead (thesis Figure 3.38 allows either or
    both).  The host name embedded in the access URI is what joins a binding
    to its NodeState monitoring row.
    """

    OBJECT_TYPE = "urn:oasis:names:tc:ebxml-regrep:ObjectType:ServiceBinding"

    def __init__(
        self,
        id: str,
        *,
        service: str,
        access_uri: str | None = None,
        target_binding: str | None = None,
        **kwargs,
    ) -> None:
        super().__init__(id, **kwargs)
        if not service:
            raise InvalidRequestError("service binding requires its service id")
        if not access_uri and not target_binding:
            raise InvalidRequestError(
                "service binding requires an access URI or a target binding"
            )
        self.service = service
        self.access_uri = access_uri
        self.target_binding = target_binding
        self.specification_link_ids: list[str] = []
        #: (uri, host) memo for :attr:`host`; validated by uri identity so a
        #: reassigned access_uri recomputes (discovery reads host per query)
        self._host_memo: tuple[str, str] | None = None

    def _copy_into(self, clone: "RegistryObject") -> None:
        super()._copy_into(clone)
        clone.specification_link_ids = list(self.specification_link_ids)

    @property
    def host(self) -> str | None:
        """Host name extracted from the access URI (NodeState join key).

        ``http://exergy.sdsu.edu:8080/Adder/addService`` → ``exergy.sdsu.edu``.
        """
        uri = self.access_uri
        if not uri:
            return None
        memo = self._host_memo
        if memo is not None and memo[0] is uri:
            return memo[1]
        host = host_of_uri(uri)
        self._host_memo = (uri, host)
        return host


class SpecificationLink(RegistryObject):
    """Link from a ServiceBinding to its technical spec (e.g. a WSDL document)."""

    OBJECT_TYPE = "urn:oasis:names:tc:ebxml-regrep:ObjectType:SpecificationLink"

    def __init__(
        self,
        id: str,
        *,
        service_binding: str,
        specification_object: str,
        usage_description: str = "",
        **kwargs,
    ) -> None:
        super().__init__(id, **kwargs)
        if not service_binding or not specification_object:
            raise InvalidRequestError(
                "specification link requires binding and specification ids"
            )
        self.service_binding = service_binding
        self.specification_object = specification_object
        self.usage_description = usage_description


def host_of_uri(uri: str) -> str:
    """Extract the bare host name from an access URI.

    Strips scheme, userinfo, port, and path; IPv6 literals keep brackets off.
    Raises :class:`InvalidRequestError` on empty input.
    """
    if not uri:
        raise InvalidRequestError("empty access URI")
    rest = uri.split("://", 1)[-1]
    authority = rest.split("/", 1)[0]
    if "@" in authority:
        authority = authority.rsplit("@", 1)[-1]
    if authority.startswith("["):  # IPv6 literal
        return authority[1 : authority.index("]")]
    return authority.split(":", 1)[0]
