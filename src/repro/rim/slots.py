"""Slots: dynamic, named multi-valued attributes on registry objects.

ebRIM lets submitters extend any RegistryObject with arbitrary attributes —
the thesis example is attaching a ``copyright`` slot.  A slot has a unique
name per object, an optional slotType, and an ordered list of string values.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.errors import InvalidRequestError


@dataclass
class Slot:
    """A named list of values attached to a RegistryObject."""

    name: str
    values: list[str] = field(default_factory=list)
    slot_type: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise InvalidRequestError("slot name must be non-empty")
        self.values = list(self.values)

    @property
    def value(self) -> str | None:
        """First value, for the common single-valued case."""
        return self.values[0] if self.values else None

    def copy(self) -> "Slot":
        return Slot(name=self.name, values=list(self.values), slot_type=self.slot_type)


class SlotMap:
    """The slot collection of one RegistryObject (names unique, order kept)."""

    __slots__ = ("_slots",)

    def __init__(self) -> None:
        self._slots: dict[str, Slot] = {}

    def add(self, slot: Slot, *, replace: bool = False) -> None:
        """Add a slot; duplicate names are an error unless *replace* is set.

        ebRS ``addSlots`` semantics: adding an existing name fails; the
        LifeCycleManager offers update via remove+add or replace=True.
        """
        if slot.name in self._slots and not replace:
            raise InvalidRequestError(f"duplicate slot name: {slot.name!r}")
        self._slots[slot.name] = slot

    def remove(self, name: str) -> None:
        if name not in self._slots:
            raise InvalidRequestError(f"no such slot: {name!r}")
        del self._slots[name]

    def get(self, name: str) -> Slot | None:
        return self._slots.get(name)

    def value(self, name: str, default: str | None = None) -> str | None:
        slot = self._slots.get(name)
        return slot.value if slot and slot.values else default

    def names(self) -> list[str]:
        return list(self._slots)

    def copy(self) -> "SlotMap":
        clone = SlotMap()
        for slot in self._slots.values():
            clone._slots[slot.name] = slot.copy()
        return clone

    def __len__(self) -> int:
        return len(self._slots)

    def __iter__(self):
        return iter(self._slots.values())

    def __contains__(self, name: str) -> bool:
        return name in self._slots
