"""Object life-cycle states and transitions (ebRIM StatusType, Figure 1.19).

A registry object moves through ``Submitted → Approved → Deprecated`` with
``undeprecate`` reversing deprecation and ``remove`` deleting the object in
any state.  The :func:`check_transition` guard is shared by the
LifeCycleManager so illegal transitions fail uniformly.
"""

from __future__ import annotations

import enum

from repro.util.errors import LifeCycleError


class ObjectStatus(enum.Enum):
    """Canonical ebRIM object statuses."""

    SUBMITTED = "Submitted"
    APPROVED = "Approved"
    DEPRECATED = "Deprecated"
    WITHDRAWN = "Withdrawn"

    def __str__(self) -> str:  # pragma: no cover - display helper
        return self.value


#: Allowed (from → to) transitions, keyed by the LCM verb that causes them.
_TRANSITIONS: dict[str, dict[ObjectStatus, ObjectStatus]] = {
    "approve": {
        ObjectStatus.SUBMITTED: ObjectStatus.APPROVED,
        ObjectStatus.APPROVED: ObjectStatus.APPROVED,  # idempotent per ebRS
    },
    "deprecate": {
        ObjectStatus.SUBMITTED: ObjectStatus.DEPRECATED,
        ObjectStatus.APPROVED: ObjectStatus.DEPRECATED,
        ObjectStatus.DEPRECATED: ObjectStatus.DEPRECATED,
    },
    "undeprecate": {
        ObjectStatus.DEPRECATED: ObjectStatus.APPROVED,
    },
}


def check_transition(verb: str, current: ObjectStatus) -> ObjectStatus:
    """Return the status after applying *verb*, or raise :class:`LifeCycleError`."""
    table = _TRANSITIONS.get(verb)
    if table is None:
        raise LifeCycleError(f"unknown life-cycle verb: {verb!r}")
    try:
        return table[current]
    except KeyError:
        raise LifeCycleError(
            f"cannot {verb} an object in status {current.value}"
        ) from None
