"""Internationalized strings (ebRIM InternationalString / LocalizedString).

Every human-readable attribute in ebRIM (names, descriptions) is an
InternationalString: a set of per-locale LocalizedString values.  The thesis
UI only ever exercises the default locale, but the model keeps the full
structure so classification schemes and federation metadata round-trip.
"""

from __future__ import annotations

from dataclasses import dataclass

DEFAULT_LOCALE = "en_US"
DEFAULT_CHARSET = "UTF-8"


@dataclass(frozen=True)
class LocalizedString:
    """A single (locale, charset, value) triple."""

    value: str
    locale: str = DEFAULT_LOCALE
    charset: str = DEFAULT_CHARSET


class InternationalString:
    """A locale → value map with convenience access for the default locale."""

    __slots__ = ("_strings",)

    def __init__(self, value: str | None = None, *, locale: str = DEFAULT_LOCALE) -> None:
        self._strings: dict[str, LocalizedString] = {}
        if value is not None:
            self.set(value, locale=locale)

    @classmethod
    def of(cls, value: "InternationalString | str | None") -> "InternationalString":
        """Coerce a plain string (or None) into an InternationalString."""
        if isinstance(value, InternationalString):
            return value
        return cls(value)

    def set(self, value: str, *, locale: str = DEFAULT_LOCALE) -> None:
        """Set the value for one locale."""
        self._strings[locale] = LocalizedString(value=value, locale=locale)

    def get(self, locale: str = DEFAULT_LOCALE) -> str | None:
        """Return the value for *locale*, falling back to any available locale."""
        entry = self._strings.get(locale)
        if entry is None and self._strings:
            entry = next(iter(self._strings.values()))
        return entry.value if entry else None

    @property
    def value(self) -> str:
        """Default-locale value, '' when unset — handy for display and queries."""
        return self.get() or ""

    def locales(self) -> list[str]:
        return sorted(self._strings)

    def localized(self) -> list[LocalizedString]:
        return [self._strings[loc] for loc in self.locales()]

    def copy(self) -> "InternationalString":
        clone = InternationalString()
        clone._strings = dict(self._strings)
        return clone

    def __bool__(self) -> bool:
        return any(s.value for s in self._strings.values())

    def __eq__(self, other: object) -> bool:
        if isinstance(other, str):
            return self.value == other
        if isinstance(other, InternationalString):
            return self._strings == other._strings
        return NotImplemented

    def __hash__(self) -> int:
        return hash(tuple(sorted(self._strings.items())))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"InternationalString({self.value!r})"
