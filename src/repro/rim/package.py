"""RegistryPackage: user-defined grouping of registry objects.

Packaging is another ebXML-over-UDDI differentiator (Table 1.1): any number
of objects can be grouped into a package, and one object may belong to many
packages.  Membership is modelled with HasMember associations; the package
object itself only carries identity and metadata, with a cached member list
maintained by the LifeCycleManager for cheap traversal.
"""

from __future__ import annotations

from repro.rim.base import RegistryEntry


class RegistryPackage(RegistryEntry):
    """A named group of registry objects."""

    OBJECT_TYPE = "urn:oasis:names:tc:ebxml-regrep:ObjectType:RegistryPackage"

    def __init__(self, id: str, **kwargs) -> None:
        super().__init__(id, **kwargs)
        #: cached member object ids (authoritative state is HasMember associations)
        self.member_ids: list[str] = []

    def add_member(self, object_id: str) -> None:
        if object_id not in self.member_ids:
            self.member_ids.append(object_id)

    def remove_member(self, object_id: str) -> None:
        if object_id in self.member_ids:
            self.member_ids.remove(object_id)
