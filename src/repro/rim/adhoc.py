"""AdhocQuery and Subscription model objects.

AdhocQuery instances store parameterized queries *in* the registry (an
ebXML-over-UDDI differentiator, Table 1.1); Subscriptions pair a selector
query with delivery actions for content-based event notification
(§1.3.2.5).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.rim.base import RegistryObject
from repro.util.errors import InvalidRequestError

QUERY_LANGUAGE_SQL = "SQL-92"
QUERY_LANGUAGE_FILTER = "XML-FilterQuery"


class AdhocQuery(RegistryObject):
    """A stored (possibly parameterized) query.

    Parameters use ``$name`` placeholders in the query text and are bound at
    invocation time by the QueryManager.
    """

    OBJECT_TYPE = "urn:oasis:names:tc:ebxml-regrep:ObjectType:AdhocQuery"

    def __init__(
        self,
        id: str,
        *,
        query: str,
        query_language: str = QUERY_LANGUAGE_SQL,
        **kwargs,
    ) -> None:
        super().__init__(id, **kwargs)
        if not query.strip():
            raise InvalidRequestError("adhoc query requires query text")
        if query_language not in (QUERY_LANGUAGE_SQL, QUERY_LANGUAGE_FILTER):
            raise InvalidRequestError(f"unknown query language: {query_language!r}")
        self.query = query
        self.query_language = query_language

    def parameter_names(self) -> list[str]:
        """Return the ``$name`` placeholders appearing in the query text."""
        import re

        return sorted(set(re.findall(r"\$([A-Za-z_][A-Za-z0-9_]*)", self.query)))

    def bind(self, **parameters: str) -> str:
        """Substitute parameters, quoting values as SQL string literals."""
        text = self.query
        missing = [p for p in self.parameter_names() if p not in parameters]
        if missing:
            raise InvalidRequestError(f"unbound query parameters: {missing}")
        for name, value in parameters.items():
            literal = "'" + str(value).replace("'", "''") + "'"
            text = text.replace(f"${name}", literal)
        return text


@dataclass(frozen=True)
class NotifyAction:
    """A delivery action for subscription notifications.

    ``mode`` is ``"service"`` (invoke a registered Web Service endpoint) or
    ``"email"`` (deliver to an email address) — the two channels Table 1.1
    credits to ebXML registries.
    """

    mode: str
    endpoint: str

    def __post_init__(self) -> None:
        if self.mode not in ("service", "email"):
            raise InvalidRequestError(f"unknown notification mode: {self.mode!r}")
        if not self.endpoint:
            raise InvalidRequestError("notification action requires an endpoint")


class Subscription(RegistryObject):
    """A client's registered interest in registry events.

    ``selector`` is the id of an AdhocQuery whose result set defines the
    objects of interest; events affecting matching objects trigger every
    action.
    """

    OBJECT_TYPE = "urn:oasis:names:tc:ebxml-regrep:ObjectType:Subscription"

    def __init__(
        self,
        id: str,
        *,
        selector: str,
        actions: list[NotifyAction],
        start_time: float = 0.0,
        end_time: float | None = None,
        **kwargs,
    ) -> None:
        super().__init__(id, **kwargs)
        if not selector:
            raise InvalidRequestError("subscription requires a selector query id")
        if not actions:
            raise InvalidRequestError("subscription requires at least one action")
        self.selector = selector
        self.actions = list(actions)
        self.start_time = start_time
        self.end_time = end_time

    def active_at(self, now: float) -> bool:
        if now < self.start_time:
            return False
        return self.end_time is None or now <= self.end_time
