"""Classification schemes, nodes, and classifications (ebRIM taxonomy support).

A ClassificationScheme is the root of a taxonomy tree of ClassificationNodes
(e.g. NAICS, ISO 3166).  A Classification applies one node of a scheme — or,
for *external* schemes, a raw value — to a RegistryObject.  User-defined
taxonomies are a headline ebXML-over-UDDI feature (Table 1.1), so the model
supports building arbitrary trees and validating classifications against
them.
"""

from __future__ import annotations

from repro.rim.base import RegistryEntry, RegistryObject
from repro.util.errors import InvalidRequestError


class ClassificationScheme(RegistryEntry):
    """Root of a taxonomy; ``internal`` schemes keep their node tree in-registry."""

    OBJECT_TYPE = "urn:oasis:names:tc:ebxml-regrep:ObjectType:ClassificationScheme"

    def __init__(self, id: str, *, is_internal: bool = True, node_type: str = "UniqueCode", **kwargs) -> None:
        super().__init__(id, **kwargs)
        self.is_internal = is_internal
        self.node_type = node_type
        #: ids of direct child ClassificationNodes
        self.child_node_ids: list[str] = []


class ClassificationNode(RegistryObject):
    """A node in a taxonomy tree.

    ``code`` is the node's value within the scheme (e.g. a NAICS code);
    ``path`` is the canonical `/scheme/code/...` path used in queries.
    """

    OBJECT_TYPE = "urn:oasis:names:tc:ebxml-regrep:ObjectType:ClassificationNode"

    def __init__(
        self,
        id: str,
        *,
        code: str,
        parent: str,
        path: str | None = None,
        **kwargs,
    ) -> None:
        super().__init__(id, **kwargs)
        if not code:
            raise InvalidRequestError("classification node requires a code")
        if not parent:
            raise InvalidRequestError("classification node requires a parent id")
        self.code = code
        self.parent = parent  # scheme id or another node id
        self.path = path or code
        self.child_node_ids: list[str] = []


class Classification(RegistryObject):
    """Application of a taxonomy node (or external value) to an object.

    Exactly one of ``classification_node`` (internal scheme) or
    ``node_representation`` + ``classification_scheme`` (external scheme)
    must be provided, per ebRIM.
    """

    OBJECT_TYPE = "urn:oasis:names:tc:ebxml-regrep:ObjectType:Classification"

    def __init__(
        self,
        id: str,
        *,
        classified_object: str,
        classification_node: str | None = None,
        classification_scheme: str | None = None,
        node_representation: str | None = None,
        **kwargs,
    ) -> None:
        super().__init__(id, **kwargs)
        if not classified_object:
            raise InvalidRequestError("classification requires a classified object id")
        internal = classification_node is not None
        external = node_representation is not None and classification_scheme is not None
        if internal == external:
            raise InvalidRequestError(
                "classification must be internal (node id) XOR external "
                "(scheme id + node representation)"
            )
        self.classified_object = classified_object
        self.classification_node = classification_node
        self.classification_scheme = classification_scheme
        self.node_representation = node_representation

    @property
    def is_internal(self) -> bool:
        return self.classification_node is not None
