"""ExtrinsicObject: metadata for repository-managed content.

An ebXML registry is *both* a registry of metadata and a repository of
content (thesis §1.3.2.3).  Repository items — WSDL documents, XML schemas,
images — are described by ExtrinsicObject metadata instances; the content
bytes themselves live in the RepositoryManager, keyed by the object id.
"""

from __future__ import annotations

from repro.rim.base import RegistryEntry


class ExtrinsicObject(RegistryEntry):
    """Metadata describing one repository item."""

    OBJECT_TYPE = "urn:oasis:names:tc:ebxml-regrep:ObjectType:ExtrinsicObject"

    def __init__(
        self,
        id: str,
        *,
        mime_type: str = "application/octet-stream",
        is_opaque: bool = False,
        content_version: str = "1.1",
        **kwargs,
    ) -> None:
        super().__init__(id, **kwargs)
        self.mime_type = mime_type
        self.is_opaque = is_opaque
        self.content_version = content_version
