"""Association objects: typed, directed many-to-many links between objects.

The thesis' Table 1.5 lists the predefined association types; the one the
load-balancing scheme exercises constantly is **OffersService**, which links
an Organization (source) to a Service (target) — the Web UI walkthrough in
§3.4.4.1 builds exactly that association.
"""

from __future__ import annotations

import enum

from repro.rim.base import RegistryObject
from repro.util.errors import InvalidRequestError


class AssociationType(enum.Enum):
    """Canonical association types (Table 1.5 plus OffersService / RelatedTo)."""

    HAS_MEMBER = "HasMember"
    EQUIVALENT_TO = "EquivalentTo"
    EXTENDS = "Extends"
    IMPLEMENTS = "Implements"
    INSTANCE_OF = "InstanceOf"
    OFFERS_SERVICE = "OffersService"
    RELATED_TO = "RelatedTo"
    USES = "Uses"
    REPLACES = "Replaces"
    SUBMITTER_OF = "SubmitterOf"
    RESPONSIBLE_FOR = "ResponsibleFor"

    @property
    def urn(self) -> str:
        return f"urn:oasis:names:tc:ebxml-regrep:AssociationType:{self.value}"

    @classmethod
    def from_name(cls, name: str) -> "AssociationType":
        """Accept either the short name or the full URN."""
        short = name.rsplit(":", 1)[-1]
        for member in cls:
            if member.value == short:
                return member
        raise InvalidRequestError(f"unknown association type: {name!r}")


class Association(RegistryObject):
    """A directed link ``source --type--> target`` between two registry objects."""

    OBJECT_TYPE = "urn:oasis:names:tc:ebxml-regrep:ObjectType:Association"

    def __init__(
        self,
        id: str,
        *,
        source_object: str,
        target_object: str,
        association_type: AssociationType | str = AssociationType.RELATED_TO,
        **kwargs,
    ) -> None:
        super().__init__(id, **kwargs)
        if not source_object or not target_object:
            raise InvalidRequestError("association requires source and target ids")
        if source_object == target_object:
            raise InvalidRequestError("association source and target must differ")
        if isinstance(association_type, str):
            association_type = AssociationType.from_name(association_type)
        self.source_object = source_object
        self.target_object = target_object
        self.association_type = association_type
        #: Both-sides confirmation flags (ebRS association confirmation).
        self.confirmed_by_source = True
        self.confirmed_by_target = False

    @property
    def is_confirmed(self) -> bool:
        """An association is visible once both parties confirmed it.

        Intra-owner associations (same submitter owns both ends) are
        auto-confirmed by the LifeCycleManager.
        """
        return self.confirmed_by_source and self.confirmed_by_target
