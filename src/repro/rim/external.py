"""ExternalIdentifier and ExternalLink (ebRIM §1.3.2.3).

ExternalIdentifiers attach well-known identifiers (DUNS numbers, SSNs,
aliases) to registry objects.  ExternalLinks are named URIs to content *not*
managed by the registry — e.g. a vendor's human-readable documentation page.
"""

from __future__ import annotations

from repro.rim.base import RegistryObject
from repro.util.errors import InvalidRequestError


class ExternalIdentifier(RegistryObject):
    """A (scheme, value) identifier attached to a registry object."""

    OBJECT_TYPE = "urn:oasis:names:tc:ebxml-regrep:ObjectType:ExternalIdentifier"

    def __init__(
        self,
        id: str,
        *,
        registry_object: str,
        identification_scheme: str,
        value: str,
        **kwargs,
    ) -> None:
        super().__init__(id, **kwargs)
        if not registry_object:
            raise InvalidRequestError("external identifier requires its object id")
        if not identification_scheme or not value:
            raise InvalidRequestError("external identifier requires scheme and value")
        self.registry_object = registry_object
        self.identification_scheme = identification_scheme
        self.value = value


class ExternalLink(RegistryObject):
    """A named URI to unmanaged external content."""

    OBJECT_TYPE = "urn:oasis:names:tc:ebxml-regrep:ObjectType:ExternalLink"

    def __init__(self, id: str, *, external_uri: str, **kwargs) -> None:
        super().__init__(id, **kwargs)
        if not external_uri:
            raise InvalidRequestError("external link requires a URI")
        self.external_uri = external_uri
