"""Party classes: User, Organization, and the reusable address entities.

These are the objects the Web-UI walkthrough of thesis §3.4.4.1 builds:
an Organization with PostalAddress, EmailAddress, and TelephoneNumber
entries, owned by a registered User.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.rim.base import RegistryObject
from repro.util.errors import InvalidRequestError


@dataclass(frozen=True)
class PostalAddress:
    """Reusable postal-address entity (thesis Figure 3.18/3.20 fields)."""

    street_number: str = ""
    street: str = ""
    city: str = ""
    state: str = ""
    country: str = ""
    postal_code: str = ""
    type: str = ""

    def one_line(self) -> str:
        """Render the address the way the Web UI's detail pane shows it."""
        parts = [
            f"{self.street_number} {self.street}".strip(),
            self.city,
            self.state,
            self.postal_code,
            self.country,
        ]
        return ", ".join(p for p in parts if p)


@dataclass(frozen=True)
class EmailAddress:
    """Reusable email entity."""

    address: str
    type: str = "OfficeEmail"

    def __post_init__(self) -> None:
        if "@" not in self.address:
            raise InvalidRequestError(f"invalid email address: {self.address!r}")


@dataclass(frozen=True)
class TelephoneNumber:
    """Reusable telephone entity (thesis Figure 3.29 fields)."""

    number: str
    country_code: str = ""
    area_code: str = ""
    extension: str = ""
    type: str = "OfficePhone"

    def formatted(self) -> str:
        parts = []
        if self.country_code:
            parts.append(f"+{self.country_code}")
        if self.area_code:
            parts.append(f"({self.area_code})")
        parts.append(self.number)
        if self.extension:
            parts.append(f"x{self.extension}")
        return " ".join(parts)


@dataclass(frozen=True)
class PersonName:
    """Name of a registered user."""

    first_name: str = ""
    middle_name: str = ""
    last_name: str = ""

    def full(self) -> str:
        return " ".join(p for p in (self.first_name, self.middle_name, self.last_name) if p)


class User(RegistryObject):
    """A registered registry user; the subject of authentication and audit."""

    OBJECT_TYPE = "urn:oasis:names:tc:ebxml-regrep:ObjectType:User"

    def __init__(
        self,
        id: str,
        *,
        alias: str,
        person_name: PersonName | None = None,
        organization: str | None = None,
        **kwargs,
    ) -> None:
        super().__init__(id, **kwargs)
        if not alias:
            raise InvalidRequestError("user requires an alias")
        self.alias = alias
        self.person_name = person_name or PersonName()
        self.organization = organization
        self.emails: list[EmailAddress] = []
        self.telephones: list[TelephoneNumber] = []
        self.addresses: list[PostalAddress] = []
        #: role names used by the XACML-lite policy engine
        self.roles: set[str] = {"RegistryUser"}


class Organization(RegistryObject):
    """An organization that publishes services (thesis Figures 3.17–3.33)."""

    OBJECT_TYPE = "urn:oasis:names:tc:ebxml-regrep:ObjectType:Organization"

    def __init__(
        self,
        id: str,
        *,
        parent: str | None = None,
        primary_contact: str | None = None,
        **kwargs,
    ) -> None:
        super().__init__(id, **kwargs)
        self.parent = parent
        self.primary_contact = primary_contact
        self.addresses: list[PostalAddress] = []
        self.emails: list[EmailAddress] = []
        self.telephones: list[TelephoneNumber] = []
        #: cached ids of Services linked via OffersService associations
        self.service_ids: list[str] = []

    def _copy_into(self, clone: "RegistryObject") -> None:
        super()._copy_into(clone)
        clone.addresses = list(self.addresses)
        clone.emails = list(self.emails)
        clone.telephones = list(self.telephones)
        clone.service_ids = list(self.service_ids)

    def add_service(self, service_id: str) -> None:
        if service_id not in self.service_ids:
            self.service_ids.append(service_id)

    def remove_service(self, service_id: str) -> None:
        if service_id in self.service_ids:
            self.service_ids.remove(service_id)
