"""repro — reproduction of "A Load Balancing Scheme for ebXML Registries".

A pure-Python ebXML registry/repository (ebRIM model, LifeCycleManager /
QueryManager services, SQL-92 AdhocQuery engine, XACML-lite security, SOAP /
HTTP bindings) extended with the thesis' constraint-based load-balancing
scheme, plus the host/cluster simulator and MTC workload harness that
evaluate it.

Quick start::

    from repro.mtc import ExperimentConfig, compare_policies
    results = compare_policies(ExperimentConfig(duration=600.0))
    for policy, result in results.items():
        print(policy, result.metrics.row())

Package map (see DESIGN.md for the full inventory):

=================  ======================================================
``repro.core``     the contribution: constraints, LoadStatus, TimeHits,
                   the constraint-aware binding resolver
``repro.rim``      the ebRIM information model (~25 classes)
``repro.registry`` LifeCycleManager, QueryManager, repository, federation
``repro.persistence``  datastore, DAOs, the NodeState table
``repro.query``    SQL-92 subset + XML filter query engine
``repro.security`` simulated PKI, keystores, authn, XACML-lite
``repro.events``   subscriptions and content-based notification
``repro.soap``     envelopes, protocol messages, transport, bindings
``repro.sim``      discrete-event hosts, NodeStatus, network latency
``repro.client``   JAXR-style API + the AccessRegistry XML API
``repro.mtc``      workloads, policies, metrics, experiment runner
=================  ======================================================
"""

__version__ = "1.0.0"
