"""Command-line administrative tools (thesis §2.2.1 / §3.4.5).

freebXML ships command-line utilities; the thesis drives its API with
``java SampleProject "action.xml" "connection.xml"``.  This CLI reproduces
that workflow plus the experiment harness:

``repro init <state.json>``
    create a fresh registry state file;
``repro register <state.json> <alias> <password> [--keystore ks.json]``
    run user registration and write the credential into a client keystore
    (the wizard + KeystoreMover flow in one step);
``repro execute <state.json> <connection.xml> <action.xml> [--keystore ks.json]``
    the SampleProject equivalent: run an AccessRegistry action document and
    print the thesis-style output (``Organization id :- urn:uuid:…``);
``repro query <state.json> "<SQL>"``
    run an ad hoc query and print rows;
``repro stats <state.json> [--format table|json|prometheus]``
    print the registry's merged telemetry snapshot;
``repro top <state.json>``
    print the per-host NodeState table (load, memory, sample age) and the
    registry health/SLO summary — the operator's ``top`` for the cluster;
``repro slo [--fail-host h --fail-at t [--recover-at t]]``
    run an SLO-instrumented experiment (optionally with an induced outage)
    and print the burn-rate alert timeline; ``--expect page`` makes the
    exit code assert the availability SLO reached that state (the CI
    ``slo-smoke`` contract) and ``--export-trace out.json`` writes the
    Chrome trace export;
``repro profile [--workers W --requests R --out stacks.txt --svg fg.svg]``
    profile a serving-fleet workload under the sampling profiler: print
    the hot leaf frames and the queue-wait/stage/hop cost-attribution
    split, optionally exporting collapsed stacks and a flamegraph SVG
    (``--expect-samples`` makes the exit code assert a non-empty profile,
    the CI ``profile-smoke`` contract);
``repro experiment [--duration N] [--policies a,b,c]``
    run the LB-1 policy comparison and print the metrics table;
``repro sweep-period [--periods 5,10,25,60]``
    run the LB-2 staleness ablation;
``repro cluster [--members N --objects M --requests R --max-lag L]``
    run a deterministic federated demo cluster (shard-routed requests,
    changelog replication) and print the member table, replication-link
    watermarks, and the replication-lag SLO state.

State files are JSON registry snapshots (:mod:`repro.persistence.snapshot`).
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.bench import format_table
from repro.client.access import ClientEnvironment, Registry
from repro.persistence.snapshot import load_registry_file, save_registry_file
from repro.registry import RegistryConfig, RegistryServer
from repro.security.keystore import Keystore, load_keystore, save_keystore
from repro.util.clock import WallClock
from repro.util.errors import RegistryError

DEFAULT_URL = "http://localhost:8080/omar/registry"


def _open_registry(path: str, *, must_exist: bool = True) -> RegistryServer:
    registry = RegistryServer(RegistryConfig(home=DEFAULT_URL), clock=WallClock())
    if os.path.exists(path):
        load_registry_file(registry, path)
    elif must_exist:
        raise SystemExit(f"error: no registry state at {path!r}; run 'repro init' first")
    return registry


def _open_keystore(path: str | None) -> tuple[Keystore, str]:
    resolved = path or os.path.expanduser("~/.repro-keystore.json")
    if os.path.exists(resolved):
        return load_keystore(resolved), resolved
    return Keystore(), resolved


def cmd_init(args: argparse.Namespace) -> int:
    registry = RegistryServer(RegistryConfig(home=DEFAULT_URL), clock=WallClock())
    save_registry_file(registry, args.state)
    print(f"initialized empty registry state at {args.state}")
    return 0


def cmd_register(args: argparse.Namespace) -> int:
    registry = _open_registry(args.state)
    keystore, keystore_path = _open_keystore(args.keystore)
    _, credential = registry.register_user(args.alias)
    keystore.set_entry(args.alias, credential, args.password)
    keystore.import_trusted("registryOperator", registry.authority.certificate)
    save_registry_file(registry, args.state)
    save_keystore(keystore, keystore_path)
    print(f"registered user {args.alias!r}")
    print(f"credential stored in {keystore_path} (alias {args.alias!r})")
    return 0


def cmd_execute(args: argparse.Namespace) -> int:
    registry = _open_registry(args.state)
    keystore, keystore_path = _open_keystore(args.keystore)
    env = ClientEnvironment(
        registries={DEFAULT_URL: registry},
        keystores={keystore_path: keystore},
        default_keystore_path=keystore_path,
    )
    try:
        api = Registry(args.connection, args.action, environment=env)
        published, modified, uris = api.execute()
    except RegistryError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    # thesis §3.4.5 output format
    for org_id in published:
        print(f"Organization id :- {org_id}")
    for org_id in modified:
        print(f"Organization Modified :- {org_id}")
    for uri in uris:
        print(uri)
    save_registry_file(registry, args.state)
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    registry = _open_registry(args.state)
    try:
        response = registry.qm.execute_adhoc_query(args.sql)
    except RegistryError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if response.rows:
        print(format_table(response.rows))
    print(f"{response.total_result_count} row(s)")
    return 0


def _flatten_snapshot(value: object, prefix: str = "") -> list[dict]:
    """Nested snapshot → rows of dotted-key/value pairs (table rendering)."""
    import json

    rows: list[dict] = []
    if isinstance(value, dict):
        for key in value:
            child_prefix = f"{prefix}.{key}" if prefix else str(key)
            rows.extend(_flatten_snapshot(value[key], child_prefix))
    elif isinstance(value, (list, tuple)):
        rows.append({"key": prefix, "value": json.dumps(value, default=str)})
    else:
        rows.append({"key": prefix, "value": value})
    return rows


def cmd_stats(args: argparse.Namespace) -> int:
    import json

    registry = _open_registry(args.state)
    if args.format == "prometheus":
        # the exposition is already worker-labelled (request latency series);
        # --per-worker only reshapes the snapshot formats
        sys.stdout.write(registry.telemetry.render_prometheus())
        return 0
    snapshot = registry.telemetry_snapshot()
    if getattr(args, "writes", False):
        snapshot = {"writes": snapshot["writes"]}
    elif getattr(args, "per_worker", False):
        snapshot["pipeline"] = registry.pipeline_stats(per_worker=True)
    if args.format == "json":
        print(json.dumps(snapshot, indent=2, default=str))
        return 0
    rows = _flatten_snapshot(snapshot)
    title = "write spine" if getattr(args, "writes", False) else "registry telemetry"
    if rows:
        print(format_table(rows, title=title))
    return 0


def _print_span_tree(span: dict, indent: int = 1) -> None:
    """Render one exported span tree (Span.to_dict) as an indented outline."""
    tags = span.get("tags") or {}
    scalar_tags = {
        key: value
        for key, value in sorted(tags.items())
        if not isinstance(value, (dict, list))
    }
    suffix = (
        " [" + " ".join(f"{k}={v}" for k, v in scalar_tags.items()) + "]"
        if scalar_tags
        else ""
    )
    duration_ms = (span.get("duration") or 0.0) * 1000.0
    print(f"{'  ' * indent}{span['name']}  {duration_ms:.3f} ms{suffix}")
    for child in span.get("children", ()):
        _print_span_tree(child, indent + 1)


def cmd_top(args: argparse.Namespace) -> int:
    registry = _open_registry(args.state)
    now = registry.clock.now()
    rows = [
        {
            "host": sample.host,
            "load": round(sample.load, 2),
            "memory_mb": sample.memory >> 20,
            "swap_mb": sample.swap_memory >> 20,
            "age_s": round(now - sample.updated, 1),
        }
        for sample in sorted(registry.node_state.all_samples(), key=lambda s: s.host)
    ]
    if rows:
        print(format_table(rows, title="node status"))
    else:
        print("no NodeState samples recorded")
    health = registry.telemetry.health()
    print(f"health: {health['status']}")
    for name, check in sorted((health.get("checks") or {}).items()):
        detail = {k: v for k, v in check.items() if k != "status"}
        suffix = f" {detail}" if detail else ""
        print(f"  {name}: {check['status']}{suffix}")
    flapping = registry.telemetry.history.flapping(600.0)
    if flapping:
        print(f"flapping hosts (10 min): {', '.join(flapping)}")
    exemplars = registry.telemetry.exemplar_index()
    if exemplars:
        exemplar_rows = [
            {
                "metric": entry["metric"],
                "labels": ",".join(
                    f"{k}={v}" for k, v in sorted(entry["labels"].items())
                ),
                "le": entry["le"],
                "value_ms": round(entry["value"] * 1000.0, 3),
                "trace_id": entry.get("trace_id", ""),
            }
            for entry in exemplars
        ]
        print(format_table(exemplar_rows, title="slow-bucket exemplars"))
        slowest = max(exemplars, key=lambda entry: entry["value"])
        trace_id = slowest.get("trace_id")
        trace = registry.telemetry.find_trace(trace_id) if trace_id else None
        if trace is not None:
            print(f"slowest exemplar trace ({trace_id}):")
            _print_span_tree(trace)
    if getattr(args, "per_worker", False):
        worker_rows = [
            {
                "worker": worker,
                "edge": edge,
                "operation": operation,
                "count": stats["count"],
                "faults": stats["faults"],
                "mean_ms": round(stats["mean_latency_s"] * 1000.0, 3),
            }
            for worker, edges in sorted(
                registry.pipeline_stats(per_worker=True).items()
            )
            for edge, operations in sorted(edges.items())
            for operation, stats in sorted(operations.items())
        ]
        if worker_rows:
            print(format_table(worker_rows, title="pipeline by worker"))
        else:
            print("no per-worker pipeline traffic recorded")
    return 0


def cmd_slo(args: argparse.Namespace) -> int:
    import json

    from repro.mtc.experiment import ExperimentConfig, ExperimentHarness, HostFailure
    from repro.obs.slo import default_slos

    failures: tuple[HostFailure, ...] = ()
    if args.fail_host:
        failures = (
            HostFailure(
                host=args.fail_host,
                fail_at=args.fail_at,
                recover_at=args.recover_at,
            ),
        )
    windows = tuple(float(w) for w in args.windows.split(","))
    config = ExperimentConfig(
        duration=args.duration,
        monitor_period=args.period,
        failures=failures,
        slos=default_slos(windows=windows),
        history=True,
        log=True,
        trace=args.export_trace is not None,
    )
    harness = ExperimentHarness(config)
    result = harness.run()
    rows = [
        {
            "t": round(entry["t"] - config.start_of_day, 1),
            "slo": entry["slo"],
            "from": entry["from"],
            "to": entry["to"],
        }
        for entry in result.slo_timeline
    ]
    if rows:
        print(format_table(rows, title="SLO alert timeline"))
    else:
        print("no SLO alert transitions")
    print("final states: " + json.dumps(result.slo_states, sort_keys=True))
    marks = harness.registry.telemetry.history.high_water_marks()
    print(
        f"history: {marks['series']} series, "
        f"max {marks['max_points']}/{marks['capacity']} points"
    )
    if args.export_trace is not None:
        with open(args.export_trace, "w") as fh:
            fh.write(harness.registry.telemetry.tracer.export_chrome())
        print(f"chrome trace written to {args.export_trace}")
    if args.expect is not None:
        reached = any(
            entry["to"] == args.expect
            and (args.expect_slo is None or entry["slo"] == args.expect_slo)
            for entry in result.slo_timeline
        )
        if not reached:
            which = args.expect_slo or "any SLO"
            print(f"error: {which} never reached {args.expect!r}", file=sys.stderr)
            return 1
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """Profile a serving-fleet workload; export stacks / flamegraph."""
    import random

    from repro.obs.profile import SamplingProfiler
    from repro.rim import Organization
    from repro.serving import ServingConfig, ServingSupervisor
    from repro.soap.messages import GetRegistryObjectRequest

    registry = RegistryServer(
        RegistryConfig(seed=11, home=DEFAULT_URL), clock=WallClock()
    )
    registry.enable_tracing()
    registry.enable_attribution()
    _, credential = registry.register_user("profiler")
    session = registry.login(credential)
    supervisor = ServingSupervisor(
        registry,
        ServingConfig(
            workers=args.workers, wire_delay_s=args.wire_ms / 1000.0
        ),
    )
    profiler = SamplingProfiler(interval_s=args.interval_ms / 1000.0)
    object_ids = [registry.ids.new_id() for _ in range(args.objects)]
    registry.lcm.submit_objects(
        session,
        [
            Organization(object_id, name=f"ProfiledOrg{index:03d}")
            for index, object_id in enumerate(object_ids)
        ],
    )
    rng = random.Random(7)
    with supervisor:
        profiler.start()
        try:
            futures = [
                supervisor.submit(
                    body=GetRegistryObjectRequest(rng.choice(object_ids))
                )
                for _ in range(args.requests)
            ]
            for future in futures:
                future.result(timeout=60.0)
            supervisor.drain()
            # even a run shorter than one sampling interval yields a profile
            profiler.sample_once()
        finally:
            profiler.stop()

    stats = profiler.stats()
    print(
        f"profile: {stats['samples']} sample(s), "
        f"{stats['distinct_stacks']} distinct stack(s), "
        f"{stats['wall_s']:.2f} s wall, "
        f"interval {stats['interval_s'] * 1000.0:g} ms"
    )
    for row in profiler.top_functions(args.top):
        print(f"  {row['share'] * 100.0:5.1f}%  {row['samples']:6d}  {row['frame']}")

    attr = registry.telemetry.attribution_stats()
    print(
        f"attribution: {attr['requests']} request(s), "
        f"coverage {attr['coverage'] * 100.0:.1f}%"
    )
    print(
        "  components (s): "
        f"queue_wait {attr['queue_wait_s']:.4f}, "
        f"stage {attr['stage_s']:.4f}, "
        f"forward_hop {attr['forward_hop_s']:.4f}, "
        f"wire {attr['wire_s']:.4f}, "
        f"total {attr['total_s']:.4f}"
    )
    for stage, seconds in attr["stages"].items():
        print(f"  stage {stage}: {seconds:.4f} s")
    exemplars = registry.telemetry.exemplar_index()
    if exemplars:
        print(
            f"exemplars: {len(exemplars)} slow-bucket series carry trace ids "
            "(inspect with 'repro top')"
        )

    if args.out is not None:
        with open(args.out, "w") as fh:
            fh.write(profiler.export_collapsed())
        print(f"collapsed stacks written to {args.out}")
    if args.svg is not None:
        with open(args.svg, "w") as fh:
            fh.write(profiler.export_flamegraph_svg())
        print(f"flamegraph written to {args.svg}")
    if args.expect_samples and stats["samples"] == 0:
        print("error: profiler collected no samples", file=sys.stderr)
        return 1
    return 0


def cmd_keystoremover(args: argparse.Namespace) -> int:
    """The thesis §3.4.3 KeystoreMover, option-for-option (Table 3.2)."""
    from repro.security.keystore import KeystoreMover

    source = load_keystore(args.sourceKeystorePath)
    if os.path.exists(args.destinationKeystorePath):
        destination = load_keystore(args.destinationKeystorePath)
    else:
        destination = Keystore()
    try:
        KeystoreMover.move(
            source=source,
            source_alias=args.sourceAlias,
            source_key_password=args.sourceKeyPassword,
            destination=destination,
            destination_alias=args.destinationAlias,
            destination_key_password=args.destinationKeyPassword,
        )
    except RegistryError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    # trusted certificates travel too (the registryOperator import step)
    for alias in ("registryOperator",):
        cert = source.trusted(alias)
        if cert is not None:
            destination.import_trusted(alias, cert)
    save_keystore(destination, args.destinationKeystorePath)
    print(
        f"moved alias {args.sourceAlias!r} into {args.destinationKeystorePath}"
    )
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    from repro.mtc import ExperimentConfig, compare_policies

    policies = args.policies.split(",")
    config = ExperimentConfig(duration=args.duration, monitor_period=args.period)
    results = compare_policies(config, policies)
    print(format_table([results[p].metrics.row() for p in policies]))
    for policy in policies:
        print(f"  {policy:20s} dispatch: {results[policy].dispatch_counts}")
    return 0


def cmd_sweep_period(args: argparse.Namespace) -> int:
    from repro.mtc import ExperimentConfig, run_experiment

    rows = []
    for period in (float(p) for p in args.periods.split(",")):
        result = run_experiment(
            ExperimentConfig(duration=args.duration, monitor_period=period)
        )
        metrics = result.metrics
        rows.append(
            {
                "period_s": period,
                "load_std": round(metrics.uniformity.load_stddev, 3),
                "fairness": round(metrics.fairness, 3),
                "resp_mean_s": round(metrics.responses.mean, 2),
            }
        )
    print(format_table(rows, title="TimeHits period sweep"))
    return 0


def cmd_cluster(args: argparse.Namespace) -> int:
    """Run a deterministic demo cluster and print its operator tables."""
    import json as _json
    import random

    from repro.registry.federation import RegistryFederation
    from repro.rim import Organization
    from repro.serving import ClusterConfig, ClusterSupervisor, ServingConfig
    from repro.soap.messages import GetRegistryObjectRequest
    from repro.util.clock import ManualClock

    federation = RegistryFederation("cli-cluster")
    registries = []
    for index in range(args.members):
        registry = RegistryServer(
            RegistryConfig(
                seed=40 + index,
                home=f"http://member{index}.cluster:8080/omar/registry",
            ),
            clock=ManualClock(start=9 * 3600.0),
        )
        federation.join(registry)
        registries.append(registry)

    cluster = ClusterSupervisor(
        federation,
        ClusterConfig(
            serving=ServingConfig(workers=args.workers),
            max_replication_lag=args.max_lag,
        ),
    )
    # place every object on its shard owner, so forwarding always lands
    object_ids: list[str] = []
    sessions = {}
    for registry in registries:
        _, cred = registry.register_user(f"publisher-{registry.home}")
        sessions[registry.home] = registry.login(cred)
    with cluster:
        for i in range(args.objects):
            object_id = registries[0].ids.new_id()
            owner_home = federation.shard_map.owner(object_id)
            owner = federation.member(owner_home)
            org = Organization(object_id, name=f"ClusterOrg{i:03d}")
            owner.lcm.submit_objects(sessions[owner_home], [org])
            object_ids.append(object_id)
        rng = random.Random(7)
        futures = [
            cluster.submit(body=GetRegistryObjectRequest(rng.choice(object_ids)))
            for _ in range(args.requests)
        ]
        for future in futures:
            future.result(timeout=60.0)
        cluster.drain()
        pre_pump_lag = cluster.replication_lag()
        pumps = cluster.pump_until_converged()
        stats = cluster.cluster_stats()

    if args.format == "json":
        print(_json.dumps(stats, indent=2, default=str))
        return 0

    member_rows = []
    for home, member in stats["members"].items():
        route = member["route"]
        member_rows.append(
            {
                "member": home,
                "objects": member["objects"],
                "records": member["changelog"]["records"],
                "accepted": member["serving"]["accepted"],
                "local": route.get("local", 0),
                "forwarded": route.get("forwarded", 0),
                "served_for_peers": route.get("forwarded_served", 0),
            }
        )
    print(format_table(member_rows, title="cluster members"))

    link_rows = [
        {
            "link": f"{link['source']} -> {link['target']}",
            "watermark": link["watermark"],
            "lag": link["lag"],
            "applied": link["applied"],
            "barriers": link["skipped_barriers"],
        }
        for link in stats["replication"]
    ]
    if link_rows:
        print(format_table(link_rows, title="replication links"))
    slo_states = cluster.telemetry.slos.states()
    print(
        f"replication lag: {pre_pump_lag} record(s) before pumping, "
        f"{stats['replication_lag']} after {pumps} pump(s) "
        f"(bound {args.max_lag:g}); "
        f"replication-lag SLO: {slo_states.get('replication-lag', 'ok')}"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="ebXML registry load-balancing toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("init", help="create an empty registry state file")
    p.add_argument("state")
    p.set_defaults(func=cmd_init)

    p = sub.add_parser("register", help="register a user and write the keystore")
    p.add_argument("state")
    p.add_argument("alias")
    p.add_argument("password")
    p.add_argument("--keystore")
    p.set_defaults(func=cmd_register)

    p = sub.add_parser("execute", help="run an action.xml against the registry")
    p.add_argument("state")
    p.add_argument("connection")
    p.add_argument("action")
    p.add_argument("--keystore")
    p.set_defaults(func=cmd_execute)

    p = sub.add_parser("query", help="run an ad hoc SQL query")
    p.add_argument("state")
    p.add_argument("sql")
    p.set_defaults(func=cmd_query)

    p = sub.add_parser("stats", help="print the registry telemetry snapshot")
    p.add_argument("state")
    p.add_argument(
        "--per-worker",
        action="store_true",
        help="break the pipeline source down by serving worker "
        "(default: fleet-aggregated)",
    )
    p.add_argument(
        "--format", choices=("table", "json", "prometheus"), default="table"
    )
    p.add_argument(
        "--writes",
        action="store_true",
        help="show only the write-spine view (changelog length, last applied "
        "sequence, coalesce ratio, idempotent duplicates)",
    )
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser("top", help="print the per-host NodeState/health table")
    p.add_argument("state")
    p.add_argument(
        "--per-worker",
        action="store_true",
        help="append a per-worker pipeline table (default: fleet-aggregated)",
    )
    p.set_defaults(func=cmd_top)

    p = sub.add_parser("slo", help="run an SLO-instrumented experiment")
    p.add_argument("--duration", type=float, default=1800.0)
    p.add_argument("--period", type=float, default=25.0)
    p.add_argument("--windows", default="120,600")
    p.add_argument("--fail-host")
    p.add_argument("--fail-at", type=float, default=300.0)
    p.add_argument("--recover-at", type=float)
    p.add_argument("--export-trace", metavar="PATH")
    p.add_argument("--expect", choices=("warning", "page"))
    p.add_argument("--expect-slo")
    p.set_defaults(func=cmd_slo)

    p = sub.add_parser(
        "profile",
        help="profile a serving-fleet workload; export collapsed "
        "stacks / flamegraph and print the cost-attribution split",
    )
    p.add_argument("--workers", type=int, default=4)
    p.add_argument("--objects", type=int, default=32)
    p.add_argument("--requests", type=int, default=256)
    p.add_argument(
        "--wire-ms",
        type=float,
        default=0.0,
        help="simulated per-request wire/IO milliseconds in each worker",
    )
    p.add_argument(
        "--interval-ms",
        type=float,
        default=5.0,
        help="sampling interval in milliseconds",
    )
    p.add_argument("--top", type=int, default=10, help="hot leaf frames to print")
    p.add_argument("--out", metavar="PATH", help="write collapsed-stack text")
    p.add_argument("--svg", metavar="PATH", help="write the flamegraph SVG")
    p.add_argument(
        "--expect-samples",
        action="store_true",
        help="exit 1 if the profiler collected no samples (CI smoke contract)",
    )
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser(
        "keystoremover", help="copy a credential between keystores (thesis §3.4.3)"
    )
    p.add_argument("--sourceKeystorePath", required=True)
    p.add_argument("--sourceAlias", required=True)
    p.add_argument("--sourceKeyPassword", required=True)
    p.add_argument("--destinationKeystorePath", required=True)
    p.add_argument("--destinationAlias")
    p.add_argument("--destinationKeyPassword")
    p.set_defaults(func=cmd_keystoremover)

    p = sub.add_parser("experiment", help="run the policy-comparison experiment")
    p.add_argument("--duration", type=float, default=900.0)
    p.add_argument("--period", type=float, default=25.0)
    p.add_argument(
        "--policies", default="first-uri,random,round-robin,constraint-lb"
    )
    p.set_defaults(func=cmd_experiment)

    p = sub.add_parser("sweep-period", help="run the monitoring-period ablation")
    p.add_argument("--duration", type=float, default=900.0)
    p.add_argument("--periods", default="5,10,25,60,120")
    p.set_defaults(func=cmd_sweep_period)

    p = sub.add_parser(
        "cluster",
        help="run a demo federated cluster and print members/watermarks/lag",
    )
    p.add_argument("--members", type=int, default=3)
    p.add_argument("--workers", type=int, default=2)
    p.add_argument("--objects", type=int, default=24)
    p.add_argument("--requests", type=int, default=48)
    p.add_argument(
        "--max-lag",
        type=float,
        default=64.0,
        help="replication-lag SLO bound, in changelog records",
    )
    p.add_argument("--format", choices=("table", "json"), default="table")
    p.set_defaults(func=cmd_cluster)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
