"""Collaboration Protocol Profiles and Agreements (ebCPPA, thesis §1.3.2.2).

A **CPP** states one party's capabilities: the business processes it
supports, its message-service endpoint, acceptable transports, and
messaging/security requirements.  A **CPA** is the *intersection* two
parties negotiate before trading (Figure 1.15 step 3): a shared process,
mutually supported transport and security level, and the reliability
parameters both can honour.

``negotiate`` implements the intersection rules; incompatibilities raise
with a reason, matching the scenario where Company B's proposal can be
rejected.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.util.errors import InvalidRequestError


class Transport(enum.Enum):
    HTTP = "HTTP"
    HTTPS = "HTTPS"
    SMTP = "SMTP"


class SecurityLevel(enum.Enum):
    """Ordered: later members satisfy earlier requirements."""

    NONE = 0
    SIGNED = 1
    SIGNED_AND_ENCRYPTED = 2

    def satisfies(self, required: "SecurityLevel") -> bool:
        return self.value >= required.value


@dataclass(frozen=True)
class MessagingRequirements:
    """Reliable-messaging parameters a party supports/insists on."""

    retries: int = 3
    retry_interval: float = 10.0
    duplicate_elimination: bool = True
    ack_requested: bool = True


@dataclass(frozen=True)
class CollaborationProtocolProfile:
    """One party's published capabilities."""

    party_id: str
    party_name: str
    endpoint: str
    processes: frozenset[str]
    transports: frozenset[Transport] = frozenset({Transport.HTTPS, Transport.HTTP})
    #: minimum security the party accepts from a partner
    required_security: SecurityLevel = SecurityLevel.NONE
    #: maximum security the party can provide
    offered_security: SecurityLevel = SecurityLevel.SIGNED_AND_ENCRYPTED
    messaging: MessagingRequirements = field(default_factory=MessagingRequirements)

    def __post_init__(self) -> None:
        if not self.party_id or not self.endpoint:
            raise InvalidRequestError("CPP requires party id and endpoint")
        if not self.processes:
            raise InvalidRequestError("CPP must support at least one business process")


@dataclass(frozen=True)
class CollaborationProtocolAgreement:
    """The negotiated agreement between exactly two parties."""

    agreement_id: str
    process: str
    party_a: str
    party_b: str
    endpoint_a: str
    endpoint_b: str
    transport: Transport
    security: SecurityLevel
    messaging: MessagingRequirements
    status: str = "proposed"  # proposed | agreed | terminated

    def endpoint_of(self, party_id: str) -> str:
        if party_id == self.party_a:
            return self.endpoint_a
        if party_id == self.party_b:
            return self.endpoint_b
        raise InvalidRequestError(f"party {party_id!r} is not in agreement {self.agreement_id}")

    def counterparty(self, party_id: str) -> str:
        if party_id == self.party_a:
            return self.party_b
        if party_id == self.party_b:
            return self.party_a
        raise InvalidRequestError(f"party {party_id!r} is not in agreement {self.agreement_id}")

    def agreed(self) -> "CollaborationProtocolAgreement":
        from dataclasses import replace

        return replace(self, status="agreed")


#: preference order for negotiated transport
_TRANSPORT_PREFERENCE = [Transport.HTTPS, Transport.HTTP, Transport.SMTP]


def negotiate(
    a: CollaborationProtocolProfile,
    b: CollaborationProtocolProfile,
    process: str,
    *,
    agreement_id: str,
) -> CollaborationProtocolAgreement:
    """Intersect two CPPs into a proposed CPA for *process*.

    Raises :class:`InvalidRequestError` with the incompatibility when the
    profiles cannot trade.
    """
    if process not in a.processes:
        raise InvalidRequestError(f"{a.party_name} does not support process {process!r}")
    if process not in b.processes:
        raise InvalidRequestError(f"{b.party_name} does not support process {process!r}")
    common_transports = a.transports & b.transports
    if not common_transports:
        raise InvalidRequestError(
            f"no common transport between {a.party_name} and {b.party_name}"
        )
    transport = next(t for t in _TRANSPORT_PREFERENCE if t in common_transports)
    # the agreed security level must satisfy both parties' requirements and
    # be providable by both
    needed = max(a.required_security, b.required_security, key=lambda s: s.value)
    providable = min(a.offered_security, b.offered_security, key=lambda s: s.value)
    if not providable.satisfies(needed):
        raise InvalidRequestError(
            f"security mismatch: required {needed.name}, providable {providable.name}"
        )
    messaging = MessagingRequirements(
        retries=min(a.messaging.retries, b.messaging.retries),
        retry_interval=max(a.messaging.retry_interval, b.messaging.retry_interval),
        duplicate_elimination=a.messaging.duplicate_elimination
        or b.messaging.duplicate_elimination,
        ack_requested=a.messaging.ack_requested or b.messaging.ack_requested,
    )
    return CollaborationProtocolAgreement(
        agreement_id=agreement_id,
        process=process,
        party_a=a.party_id,
        party_b=b.party_id,
        endpoint_a=a.endpoint,
        endpoint_b=b.endpoint,
        transport=transport,
        security=needed,
        messaging=messaging,
    )
