"""ebMS — the ebXML Message Service (thesis §1.3.2.2's messaging layer).

Implements the reliable-messaging behaviours the spec is known for, over
the simulated transport:

* messages carry conversation / message ids and the governing CPA id;
* **acknowledgements** when the CPA requests them;
* **retries** with the CPA's retry count on transport failure;
* **duplicate elimination** keyed by message id at the receiver;
* delivery to the party's registered MessageServiceHandler.

Messages between the two CPA endpoints only; anything else is rejected, as
an MSH enforces its agreements.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable

from repro.ebxml.cpa import CollaborationProtocolAgreement
from repro.soap.transport import SimTransport
from repro.util.errors import InvalidRequestError, TransportError
from repro.util.ids import IdFactory


@dataclass(frozen=True)
class EbxmlMessage:
    """One business message."""

    message_id: str
    conversation_id: str
    cpa_id: str
    from_party: str
    to_party: str
    action: str
    payload: dict
    #: per-(conversation, sender) sequence for ordered delivery (0 = unordered)
    sequence_number: int = 0

    def ack(self) -> "Acknowledgment":
        return Acknowledgment(ref_message_id=self.message_id, by_party=self.to_party)


@dataclass(frozen=True)
class Acknowledgment:
    ref_message_id: str
    by_party: str


@dataclass
class DeliveryReport:
    """What send() reports back to the application."""

    message: EbxmlMessage
    delivered: bool
    attempts: int
    acknowledged: bool
    duplicate: bool = False


Handler = Callable[[EbxmlMessage], None]


class MessageServiceHandler:
    """One party's MSH: sends under a CPA, receives at its endpoint."""

    def __init__(
        self,
        party_id: str,
        transport: SimTransport,
        *,
        ids: IdFactory | None = None,
    ) -> None:
        self.party_id = party_id
        self.transport = transport
        self.ids = ids or IdFactory()
        self._agreements: dict[str, CollaborationProtocolAgreement] = {}
        self._handlers: dict[str, Handler] = {}
        self._seen_message_ids: set[str] = set()
        self.inbox: list[EbxmlMessage] = []
        self.acks_sent: list[Acknowledgment] = []
        self._conversation_counter = itertools.count(1)
        self._endpoint_registered = False
        #: ordered delivery: (conversation, from_party) → next send sequence
        self._send_sequences: dict[tuple[str, str], int] = {}
        #: ordered delivery: (conversation, from_party) → next expected sequence
        self._recv_expected: dict[tuple[str, str], int] = {}
        #: out-of-order messages parked until their predecessors arrive
        self._reorder_buffer: dict[tuple[str, str], dict[int, EbxmlMessage]] = {}

    # -- configuration ---------------------------------------------------------

    def install_agreement(self, cpa: CollaborationProtocolAgreement) -> None:
        if cpa.status != "agreed":
            raise InvalidRequestError("only agreed CPAs can be installed in an MSH")
        cpa.endpoint_of(self.party_id)  # validates membership
        self._agreements[cpa.agreement_id] = cpa
        if not self._endpoint_registered:
            self.transport.register_endpoint(
                cpa.endpoint_of(self.party_id), self._receive
            )
            self._endpoint_registered = True

    def on_action(self, action: str, handler: Handler) -> None:
        self._handlers[action] = handler

    def new_conversation(self) -> str:
        return f"conv-{self.party_id}-{next(self._conversation_counter)}"

    # -- sending ------------------------------------------------------------------

    def send(
        self,
        cpa_id: str,
        action: str,
        payload: dict,
        *,
        conversation_id: str | None = None,
        ordered: bool = False,
    ) -> DeliveryReport:
        cpa = self._agreements.get(cpa_id)
        if cpa is None:
            raise InvalidRequestError(f"no installed agreement {cpa_id!r}")
        to_party = cpa.counterparty(self.party_id)
        conversation = conversation_id or self.new_conversation()
        sequence = 0
        if ordered:
            key = (conversation, self.party_id)
            sequence = self._send_sequences.get(key, 0) + 1
            self._send_sequences[key] = sequence
        message = EbxmlMessage(
            message_id=self.ids.new_id(),
            conversation_id=conversation,
            cpa_id=cpa_id,
            from_party=self.party_id,
            to_party=to_party,
            action=action,
            payload=dict(payload),
            sequence_number=sequence,
        )
        endpoint = cpa.endpoint_of(to_party)
        attempts = 0
        last_error: TransportError | None = None
        while attempts <= cpa.messaging.retries:
            attempts += 1
            try:
                response = self.transport.request(endpoint, message, source=self.party_id)
            except TransportError as exc:
                last_error = exc
                continue
            acknowledged = isinstance(response, Acknowledgment)
            return DeliveryReport(
                message=message,
                delivered=True,
                attempts=attempts,
                acknowledged=acknowledged,
            )
        return DeliveryReport(
            message=message, delivered=False, attempts=attempts, acknowledged=False
        )

    # -- receiving -------------------------------------------------------------------

    def _receive(self, message: EbxmlMessage) -> Acknowledgment | None:
        if not isinstance(message, EbxmlMessage):
            raise TransportError("MSH endpoints accept only ebXML messages")
        cpa = self._agreements.get(message.cpa_id)
        if cpa is None or message.to_party != self.party_id:
            raise TransportError(
                f"no agreement {message.cpa_id!r} for party {self.party_id!r}"
            )
        duplicate = (
            cpa.messaging.duplicate_elimination
            and message.message_id in self._seen_message_ids
        )
        if not duplicate:
            self._seen_message_ids.add(message.message_id)
            if message.sequence_number > 0:
                self._deliver_ordered(message)
            else:
                self._deliver(message)
        if cpa.messaging.ack_requested:
            ack = message.ack()
            self.acks_sent.append(ack)
            return ack
        return None

    def _deliver(self, message: EbxmlMessage) -> None:
        self.inbox.append(message)
        handler = self._handlers.get(message.action)
        if handler is not None:
            handler(message)

    def _deliver_ordered(self, message: EbxmlMessage) -> None:
        """Hold out-of-order messages until their predecessors arrive."""
        key = (message.conversation_id, message.from_party)
        expected = self._recv_expected.get(key, 1)
        if message.sequence_number < expected:
            return  # late duplicate of an already-delivered sequence slot
        buffer = self._reorder_buffer.setdefault(key, {})
        buffer[message.sequence_number] = message
        while expected in buffer:
            self._deliver(buffer.pop(expected))
            expected += 1
        self._recv_expected[key] = expected
