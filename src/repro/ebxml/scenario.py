"""The Figure 1.13 business scenario: two companies meet through the registry.

Thesis steps:

1. Company A reviews the registry's Core Library;
2. A builds/configures its implementation;
3. A submits its business profile (CPP) to the registry;
4. Company B discovers A's supported scenarios through the registry;
5. B proposes a business arrangement (CPA) directly to A;
6. A accepts; the companies do business over the ebXML Messaging Service.

:class:`BusinessScenario` drives these steps against a real
:class:`~repro.registry.server.RegistryServer` (the CPP is stored as an
ExtrinsicObject repository item, classified under the canonical core-library
package) and a pair of :class:`MessageServiceHandler` instances.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.ebxml.cpa import (
    CollaborationProtocolAgreement,
    CollaborationProtocolProfile,
    SecurityLevel,
    Transport,
    negotiate,
)
from repro.ebxml.messaging import DeliveryReport, MessageServiceHandler
from repro.registry.server import RegistryServer
from repro.rim import ExtrinsicObject
from repro.security.authn import Session
from repro.soap.transport import SimTransport

CORE_LIBRARY_PACKAGE = "urn:repro:ebxml:core-library"
CPP_MIME = "application/vnd.ebxml-cpp+json"


def _cpp_to_json(cpp: CollaborationProtocolProfile) -> bytes:
    return json.dumps(
        {
            "partyId": cpp.party_id,
            "partyName": cpp.party_name,
            "endpoint": cpp.endpoint,
            "processes": sorted(cpp.processes),
            "transports": sorted(t.value for t in cpp.transports),
            "requiredSecurity": cpp.required_security.name,
            "offeredSecurity": cpp.offered_security.name,
            "messaging": {
                "retries": cpp.messaging.retries,
                "retryInterval": cpp.messaging.retry_interval,
                "duplicateElimination": cpp.messaging.duplicate_elimination,
                "ackRequested": cpp.messaging.ack_requested,
            },
        }
    ).encode("utf-8")


def _cpp_from_json(data: bytes) -> CollaborationProtocolProfile:
    from repro.ebxml.cpa import MessagingRequirements

    raw = json.loads(data.decode("utf-8"))
    return CollaborationProtocolProfile(
        party_id=raw["partyId"],
        party_name=raw["partyName"],
        endpoint=raw["endpoint"],
        processes=frozenset(raw["processes"]),
        transports=frozenset(Transport(t) for t in raw["transports"]),
        required_security=SecurityLevel[raw["requiredSecurity"]],
        offered_security=SecurityLevel[raw["offeredSecurity"]],
        messaging=MessagingRequirements(
            retries=raw["messaging"]["retries"],
            retry_interval=raw["messaging"]["retryInterval"],
            duplicate_elimination=raw["messaging"]["duplicateElimination"],
            ack_requested=raw["messaging"]["ackRequested"],
        ),
    )


@dataclass
class ScenarioLog:
    """Step-by-step record for the bench artifact."""

    steps: list[dict] = field(default_factory=list)

    def record(self, step: int, actor: str, action: str, detail: str = "") -> None:
        self.steps.append(
            {"Step": step, "Actor": actor, "Action": action, "Detail": detail}
        )


class BusinessScenario:
    """Drives the Figure 1.13 flow for two companies over one registry."""

    def __init__(
        self,
        registry: RegistryServer,
        transport: SimTransport | None = None,
    ) -> None:
        self.registry = registry
        self.transport = transport or SimTransport()
        self.log = ScenarioLog()

    # -- step 1: review the core library -------------------------------------

    def review_core_library(self, company: str) -> list[str]:
        """List core-library content names (business-process definitions)."""
        rows = self.registry.qm.execute_adhoc_query(
            "SELECT name FROM ExtrinsicObject WHERE description "
            f"LIKE '%{CORE_LIBRARY_PACKAGE}%' ORDER BY name"
        ).rows
        names = [row["name"] for row in rows]
        self.log.record(1, company, "review Core Library", f"{len(names)} artifacts")
        return names

    def seed_core_library(self, session: Session, processes: list[str]) -> None:
        """Administrator publishes business-process definitions (pre-scenario)."""
        for process in processes:
            meta = ExtrinsicObject(
                self.registry.ids.new_id(),
                name=process,
                description=f"Business process definition ({CORE_LIBRARY_PACKAGE})",
                mime_type="text/xml",
            )
            self.registry.lcm.submit_objects(session, [meta])
            self.registry.repository.store(
                meta, f'<ProcessSpecification name="{process}"/>'.encode()
            )

    # -- step 3: submit the business profile -------------------------------------

    def publish_cpp(
        self, session: Session, cpp: CollaborationProtocolProfile
    ) -> ExtrinsicObject:
        meta = ExtrinsicObject(
            self.registry.ids.new_id(),
            name=f"CPP:{cpp.party_name}",
            description=f"Collaboration Protocol Profile of {cpp.party_name}; "
            f"processes: {', '.join(sorted(cpp.processes))}",
            mime_type=CPP_MIME,
        )
        self.registry.lcm.submit_objects(session, [meta])
        self.registry.repository.store(meta, _cpp_to_json(cpp))
        self.log.record(
            3,
            cpp.party_name,
            "submit business profile (CPP)",
            f"supports {', '.join(sorted(cpp.processes))}",
        )
        return meta

    # -- step 4: discover partners ---------------------------------------------------

    def discover_partners(
        self, company: str, process: str
    ) -> list[CollaborationProtocolProfile]:
        """Find CPPs supporting *process* via the registry."""
        rows = self.registry.qm.execute_adhoc_query(
            "SELECT id FROM ExtrinsicObject WHERE name LIKE 'CPP:%' "
            f"AND description LIKE '%{process}%'"
        ).rows
        profiles = []
        for row in rows:
            item = self.registry.repository.retrieve(row["id"])
            profiles.append(_cpp_from_json(item.content))
        self.log.record(
            4,
            company,
            f"discover partners for {process!r}",
            ", ".join(p.party_name for p in profiles) or "none",
        )
        return profiles

    # -- steps 5–6: propose and accept the arrangement -------------------------------------

    def propose_cpa(
        self,
        proposer: CollaborationProtocolProfile,
        partner: CollaborationProtocolProfile,
        process: str,
    ) -> CollaborationProtocolAgreement:
        cpa = negotiate(
            partner, proposer, process, agreement_id=self.registry.ids.new_id()
        )
        self.log.record(
            5,
            proposer.party_name,
            "propose business arrangement (CPA)",
            f"process={process}, transport={cpa.transport.value}, security={cpa.security.name}",
        )
        return cpa

    def accept_cpa(
        self, acceptor_name: str, cpa: CollaborationProtocolAgreement
    ) -> CollaborationProtocolAgreement:
        agreed = cpa.agreed()
        self.log.record(6, acceptor_name, "accept CPA — ready for eBusiness", cpa.agreement_id)
        return agreed

    # -- step 6: trade over ebMS -----------------------------------------------------------

    def build_msh(self, party_id: str) -> MessageServiceHandler:
        return MessageServiceHandler(party_id, self.transport, ids=self.registry.ids)

    def exchange(
        self,
        sender: MessageServiceHandler,
        cpa: CollaborationProtocolAgreement,
        action: str,
        payload: dict,
    ) -> DeliveryReport:
        report = sender.send(cpa.agreement_id, action, payload)
        self.log.record(
            6,
            sender.party_id,
            f"ebMS {action}",
            f"delivered={report.delivered} ack={report.acknowledged} attempts={report.attempts}",
        )
        return report
