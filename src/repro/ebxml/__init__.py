"""ebXML business collaboration: CPP/CPA (ebCPPA) and messaging (ebMS).

Reproduces thesis §1.3.2.1–1.3.2.2: Collaboration Protocol Profiles,
negotiated Agreements, the reliable ebXML Message Service (acks, retries,
duplicate elimination), and the Figure 1.13 end-to-end business scenario
driven through the registry.
"""

from repro.ebxml.bpss import (
    FAILURE,
    SUCCESS,
    BinaryCollaboration,
    BusinessTransaction,
    CollaborationExecution,
    ExecutionState,
    ProtocolViolation,
    Role,
    Transition,
    bind_to_msh,
)
from repro.ebxml.cpa import (
    CollaborationProtocolAgreement,
    CollaborationProtocolProfile,
    MessagingRequirements,
    SecurityLevel,
    Transport,
    negotiate,
)
from repro.ebxml.messaging import (
    Acknowledgment,
    DeliveryReport,
    EbxmlMessage,
    MessageServiceHandler,
)
from repro.ebxml.scenario import (
    CORE_LIBRARY_PACKAGE,
    CPP_MIME,
    BusinessScenario,
    ScenarioLog,
)

__all__ = [
    "FAILURE",
    "SUCCESS",
    "BinaryCollaboration",
    "BusinessTransaction",
    "CollaborationExecution",
    "ExecutionState",
    "ProtocolViolation",
    "Role",
    "Transition",
    "bind_to_msh",
    "CollaborationProtocolAgreement",
    "CollaborationProtocolProfile",
    "MessagingRequirements",
    "SecurityLevel",
    "Transport",
    "negotiate",
    "Acknowledgment",
    "DeliveryReport",
    "EbxmlMessage",
    "MessageServiceHandler",
    "CORE_LIBRARY_PACKAGE",
    "CPP_MIME",
    "BusinessScenario",
    "ScenarioLog",
]
