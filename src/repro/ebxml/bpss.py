"""ebBPSS — the Business Process Specification Schema (thesis §1.1, item 3).

"ebBPSS provides a framework by which business systems may be configured to
support execution of business collaborations consisting of business
transactions."  This module implements the executable core:

* a **BusinessTransaction** pairs a requesting document with an optional
  responding document and a time-to-perform;
* a **BinaryCollaboration** arranges transactions as named activities with
  transitions, a start activity, and success/failure completions;
* a **CollaborationExecution** tracks one conversation's progress through
  the collaboration, validating each document against the current activity
  (wrong document / wrong direction / expired timer → protocol failure);
* :func:`bind_to_msh` wires an execution pair onto two MessageServiceHandler
  instances so that ebMS traffic is validated against the process — the
  "Business Service Interfaces" of the thesis' Figure 1.14 stack.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.util.clock import Clock
from repro.util.errors import InvalidRequestError


class Role(enum.Enum):
    INITIATOR = "initiator"
    RESPONDER = "responder"

    @property
    def other(self) -> "Role":
        return Role.RESPONDER if self is Role.INITIATOR else Role.INITIATOR


@dataclass(frozen=True)
class BusinessTransaction:
    """One request(/response) exchange."""

    name: str
    requesting_document: str
    responding_document: str | None = None
    #: seconds the responder has to answer (None = no timer)
    time_to_perform: float | None = None


@dataclass(frozen=True)
class Transition:
    from_activity: str
    to_activity: str  # activity name, or "Success" / "Failure"


SUCCESS = "Success"
FAILURE = "Failure"


@dataclass
class BinaryCollaboration:
    """A two-party business process definition."""

    name: str
    transactions: dict[str, BusinessTransaction] = field(default_factory=dict)
    #: activity name → transaction name (an activity *performs* a transaction)
    activities: dict[str, str] = field(default_factory=dict)
    #: activity performed first
    start_activity: str | None = None
    transitions: list[Transition] = field(default_factory=list)

    # -- construction helpers ---------------------------------------------------

    def add_transaction(self, transaction: BusinessTransaction) -> None:
        if transaction.name in self.transactions:
            raise InvalidRequestError(f"duplicate transaction {transaction.name!r}")
        self.transactions[transaction.name] = transaction

    def add_activity(self, activity: str, transaction_name: str, *, start: bool = False) -> None:
        if transaction_name not in self.transactions:
            raise InvalidRequestError(f"unknown transaction {transaction_name!r}")
        if activity in self.activities:
            raise InvalidRequestError(f"duplicate activity {activity!r}")
        self.activities[activity] = transaction_name
        if start:
            self.start_activity = activity

    def add_transition(self, from_activity: str, to_activity: str) -> None:
        if from_activity not in self.activities:
            raise InvalidRequestError(f"unknown activity {from_activity!r}")
        if to_activity not in self.activities and to_activity not in (SUCCESS, FAILURE):
            raise InvalidRequestError(f"unknown target activity {to_activity!r}")
        self.transitions.append(Transition(from_activity, to_activity))

    def next_activities(self, from_activity: str) -> list[str]:
        return [t.to_activity for t in self.transitions if t.from_activity == from_activity]

    def validate(self) -> None:
        """Static checks: a start exists and every activity can reach completion."""
        if self.start_activity is None:
            raise InvalidRequestError(f"collaboration {self.name!r} has no start activity")
        # reachability of a completion state from every reachable activity
        reachable = {self.start_activity}
        frontier = [self.start_activity]
        while frontier:
            current = frontier.pop()
            for target in self.next_activities(current):
                if target in (SUCCESS, FAILURE):
                    continue
                if target not in reachable:
                    reachable.add(target)
                    frontier.append(target)
        for activity in reachable:
            if not self._completes(activity, set()):
                raise InvalidRequestError(
                    f"activity {activity!r} cannot reach Success/Failure"
                )

    def _completes(self, activity: str, seen: set[str]) -> bool:
        if activity in seen:
            return False
        seen.add(activity)
        for target in self.next_activities(activity):
            if target in (SUCCESS, FAILURE):
                return True
            if self._completes(target, seen):
                return True
        return False


class ExecutionState(enum.Enum):
    AWAITING_REQUEST = "awaiting-request"
    AWAITING_RESPONSE = "awaiting-response"
    CHOOSING_NEXT = "choosing-next"
    COMPLETED_SUCCESS = "completed-success"
    COMPLETED_FAILURE = "completed-failure"


class ProtocolViolation(InvalidRequestError):
    """A document that the process definition does not allow right now."""

    code = "urn:repro:error:ProtocolViolation"


class CollaborationExecution:
    """One conversation's walk through a BinaryCollaboration."""

    def __init__(
        self, collaboration: BinaryCollaboration, *, clock: Clock, role: Role
    ) -> None:
        collaboration.validate()
        self.collaboration = collaboration
        self.clock = clock
        self.role = role
        self.current_activity: str | None = collaboration.start_activity
        self.state = ExecutionState.AWAITING_REQUEST
        self._deadline: float | None = None
        self.history: list[tuple[str, str]] = []  # (activity, document)

    # -- helpers ----------------------------------------------------------------

    @property
    def transaction(self) -> BusinessTransaction:
        assert self.current_activity is not None
        return self.collaboration.transactions[
            self.collaboration.activities[self.current_activity]
        ]

    @property
    def completed(self) -> bool:
        return self.state in (
            ExecutionState.COMPLETED_SUCCESS,
            ExecutionState.COMPLETED_FAILURE,
        )

    def _check_timer(self) -> None:
        if self._deadline is not None and self.clock.now() > self._deadline:
            self.state = ExecutionState.COMPLETED_FAILURE
            raise ProtocolViolation(
                f"time-to-perform expired for transaction {self.transaction.name!r}"
            )

    # -- document flow -------------------------------------------------------------

    def handle_document(self, document: str, *, sender: Role) -> None:
        """Validate one business document against the current activity.

        The initiator sends requesting documents; the responder sends
        responding documents.  Anything else is a protocol violation and
        fails the collaboration.
        """
        if self.completed:
            raise ProtocolViolation(
                f"collaboration already completed ({self.state.value})"
            )
        assert self.current_activity is not None
        transaction = self.transaction
        if self.state is ExecutionState.AWAITING_REQUEST:
            if sender is not Role.INITIATOR:
                self._fail(f"responder may not open transaction {transaction.name!r}")
            if document != transaction.requesting_document:
                self._fail(
                    f"expected requesting document {transaction.requesting_document!r}, "
                    f"got {document!r}"
                )
            self.history.append((self.current_activity, document))
            if transaction.responding_document is None:
                self._advance()
            else:
                self.state = ExecutionState.AWAITING_RESPONSE
                if transaction.time_to_perform is not None:
                    self._deadline = self.clock.now() + transaction.time_to_perform
            return
        if self.state is ExecutionState.AWAITING_RESPONSE:
            self._check_timer()
            if sender is not Role.RESPONDER:
                self._fail(
                    f"initiator may not answer its own request in {transaction.name!r}"
                )
            if document != transaction.responding_document:
                self._fail(
                    f"expected responding document {transaction.responding_document!r}, "
                    f"got {document!r}"
                )
            self.history.append((self.current_activity, document))
            self._deadline = None
            self._advance()
            return
        raise ProtocolViolation(f"unexpected document in state {self.state.value}")

    def choose_next(self, activity_or_completion: str) -> None:
        """Pick the next activity when several transitions are available."""
        if self.state is not ExecutionState.CHOOSING_NEXT:
            raise ProtocolViolation("no transition pending")
        assert self.current_activity is not None
        options = self.collaboration.next_activities(self.current_activity)
        if activity_or_completion not in options:
            raise ProtocolViolation(
                f"transition to {activity_or_completion!r} not allowed from "
                f"{self.current_activity!r}; options: {options}"
            )
        self._enter(activity_or_completion)

    def _advance(self) -> None:
        assert self.current_activity is not None
        options = self.collaboration.next_activities(self.current_activity)
        if not options:
            self.state = ExecutionState.COMPLETED_SUCCESS
            self.current_activity = None
            return
        if len(options) == 1:
            self._enter(options[0])
        else:
            self.state = ExecutionState.CHOOSING_NEXT

    def _enter(self, target: str) -> None:
        if target == SUCCESS:
            self.state = ExecutionState.COMPLETED_SUCCESS
            self.current_activity = None
        elif target == FAILURE:
            self.state = ExecutionState.COMPLETED_FAILURE
            self.current_activity = None
        else:
            self.current_activity = target
            self.state = ExecutionState.AWAITING_REQUEST

    def _fail(self, reason: str) -> None:
        self.state = ExecutionState.COMPLETED_FAILURE
        raise ProtocolViolation(reason)


def bind_to_msh(
    execution: CollaborationExecution, msh, *, initiator_party: str
) -> None:
    """Validate incoming ebMS messages against the process definition.

    Installs an action handler for every document of the collaboration: a
    message whose action is a known document is checked against the current
    activity; violations raise (and the MSH's transport surfaces them).
    """
    documents = set()
    for transaction in execution.collaboration.transactions.values():
        documents.add(transaction.requesting_document)
        if transaction.responding_document:
            documents.add(transaction.responding_document)

    def make_handler(document: str):
        def handler(message) -> None:
            sender = (
                Role.INITIATOR
                if message.from_party == initiator_party
                else Role.RESPONDER
            )
            execution.handle_document(document, sender=sender)

        return handler

    for document in documents:
        msh.on_action(document, make_handler(document))
