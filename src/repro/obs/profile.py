"""SamplingProfiler — periodic stack sampling with flamegraph export.

The cost-attribution plane says *where the wall time went* per request
(queue wait / kernel stages / forwarding hops); the profiler says *which
Python frames burned it*.  A background daemon thread wakes every
``interval_s`` seconds, snapshots every live thread's stack via
``sys._current_frames()``, and aggregates identical stacks into counts —
the classic collapsed-stack shape flamegraph tooling consumes.

Design constraints, mirroring the rest of ``repro/obs``:

* **off the hot path when disabled** — the profiler touches nothing in the
  kernel or serving code; it only *reads* interpreter state from its own
  thread, so a stopped (or never-constructed) profiler costs the serving
  path zero instructions;
* **worker-thread-labelled** — stacks are attributed to the serving-worker
  label declared via :func:`repro.util.workers.set_worker_label`
  (cross-thread view: :func:`~repro.util.workers.worker_labels_by_ident`),
  falling back to the thread name, so a flamegraph splits by worker exactly
  like pipeline stats and latency histograms do;
* **injectable clock + frame source** — wall-time bookkeeping runs over the
  :class:`~repro.util.clock.Clock` protocol and the frame snapshot callable
  is a constructor argument, so tests drive :meth:`sample_once`
  deterministically with a fake frames provider.

Exports:

* :meth:`SamplingProfiler.export_collapsed` — ``frame;frame;frame count``
  lines (Brendan Gregg collapsed-stack format, leaf last; feed to
  ``flamegraph.pl`` or speedscope);
* :meth:`SamplingProfiler.export_flamegraph_svg` — a dependency-free static
  SVG flame graph (hover titles carry frame + sample counts).
"""

from __future__ import annotations

import sys
import threading
from typing import Any, Callable, Iterable

from repro.util.clock import Clock, PerfClock
from repro.util.workers import worker_labels_by_ident

#: default sampling period (5 ms ≈ 200 Hz, cheap enough for bench runs)
DEFAULT_INTERVAL_S = 0.005

#: frames deeper than this are truncated (collapsed output stays bounded)
DEFAULT_MAX_DEPTH = 64


def _frame_name(frame: Any) -> str:
    """One collapsed-stack frame: ``func (file.py:line)``, separator-safe."""
    code = frame.f_code
    filename = code.co_filename.rsplit("/", 1)[-1]
    name = f"{code.co_name} ({filename}:{frame.f_lineno})"
    return name.replace(";", ":")


def _stack_of(frame: Any, max_depth: int) -> tuple[str, ...]:
    """Root-first frame names for one thread's current stack."""
    frames: list[str] = []
    while frame is not None and len(frames) < max_depth:
        frames.append(_frame_name(frame))
        frame = frame.f_back
    frames.reverse()
    return tuple(frames)


class SamplingProfiler:
    """Aggregating wall-clock stack sampler over every live thread."""

    def __init__(
        self,
        *,
        interval_s: float = DEFAULT_INTERVAL_S,
        clock: Clock | None = None,
        frames_provider: Callable[[], dict[int, Any]] | None = None,
        max_depth: int = DEFAULT_MAX_DEPTH,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be > 0")
        self.interval_s = interval_s
        self.clock: Clock = clock or PerfClock()
        self._frames = frames_provider or sys._current_frames
        self.max_depth = max_depth
        #: (worker label, root-first stack) → samples observed
        self.stacks: dict[tuple[str, tuple[str, ...]], int] = {}
        self.samples = 0
        self.started_at: float | None = None
        self.stopped_at: float | None = None
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- sampling --------------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def sample_once(self) -> int:
        """Take one snapshot of every thread's stack; returns threads seen.

        Public so tests (and short bench runs racing a fast workload) can
        sample deterministically without the background thread.
        """
        frames = self._frames()
        labels = worker_labels_by_ident()
        own = threading.get_ident()
        sampler_ident = self._thread.ident if self._thread is not None else None
        seen = 0
        with self._lock:
            for ident, frame in frames.items():
                if ident in (own, sampler_ident):
                    continue  # never profile the profiler
                label = labels.get(ident)
                if label is None:
                    label = _thread_name(ident)
                key = (label, _stack_of(frame, self.max_depth))
                self.stacks[key] = self.stacks.get(key, 0) + 1
                seen += 1
            self.samples += 1
        return seen

    def _run(self) -> None:
        while not self._stop.is_set():
            self.sample_once()
            self._stop.wait(self.interval_s)

    def start(self) -> "SamplingProfiler":
        if self.running:
            return self
        self._stop.clear()
        self.started_at = self.clock.now()
        self.stopped_at = None
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        if self._thread is None:
            return self
        self._stop.set()
        self._thread.join()
        self._thread = None
        self.stopped_at = self.clock.now()
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- views -----------------------------------------------------------------

    def _snapshot(self) -> dict[tuple[str, tuple[str, ...]], int]:
        with self._lock:
            return dict(self.stacks)

    def stats(self) -> dict[str, Any]:
        stacks = self._snapshot()
        return {
            "running": self.running,
            "samples": self.samples,
            "interval_s": self.interval_s,
            "distinct_stacks": len(stacks),
            "threads": sorted({label for label, _ in stacks}),
            "wall_s": (
                (self.stopped_at if self.stopped_at is not None else self.clock.now())
                - self.started_at
                if self.started_at is not None
                else 0.0
            ),
        }

    def top_functions(self, n: int = 10) -> list[dict[str, Any]]:
        """Leaf frames by sample count — the "where is time going" table."""
        leaves: dict[str, int] = {}
        for (_, stack), count in self._snapshot().items():
            if stack:
                leaves[stack[-1]] = leaves.get(stack[-1], 0) + count
        ranked = sorted(leaves.items(), key=lambda item: (-item[1], item[0]))
        total = sum(leaves.values()) or 1
        return [
            {"frame": frame, "samples": count, "share": count / total}
            for frame, count in ranked[:n]
        ]

    # -- export ----------------------------------------------------------------

    def export_collapsed(self) -> str:
        """Collapsed-stack text: ``worker;frame;...;frame count`` per line.

        The worker label is the synthetic root frame, so per-worker towers
        sit side by side in a flamegraph.  Deterministic line order.
        """
        lines = [
            f"{label};{';'.join(stack)} {count}"
            for (label, stack), count in sorted(self._snapshot().items())
            if stack
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def export_flamegraph_svg(self, *, width: int = 1200, row_height: int = 16) -> str:
        """A static, dependency-free SVG flame graph of the collapsed stacks."""
        root = _Node("all")
        for (label, stack), count in sorted(self._snapshot().items()):
            root.add((label,) + stack, count)
        depth = root.depth()
        height = (depth + 2) * row_height
        parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
            f'height="{height}" font-family="monospace" font-size="11">',
            f'<rect width="{width}" height="{height}" fill="#fdf6e3"/>',
        ]
        if root.count:
            _render_node(parts, root, 0.0, float(width), 0, row_height)
        parts.append("</svg>")
        return "\n".join(parts) + "\n"


def _thread_name(ident: int) -> str:
    """Fallback stack label for threads without a declared worker label."""
    for thread in threading.enumerate():
        if thread.ident == ident:
            return thread.name
    return f"thread-{ident}"


class _Node:
    """Flame-graph trie node: one frame, its sample count, ordered children."""

    __slots__ = ("name", "count", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.children: dict[str, "_Node"] = {}

    def add(self, stack: Iterable[str], count: int) -> None:
        self.count += count
        node = self
        for frame in stack:
            child = node.children.get(frame)
            if child is None:
                child = node.children[frame] = _Node(frame)
            child.count += count
            node = child

    def depth(self) -> int:
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children.values())


def _frame_color(name: str) -> str:
    """Deterministic warm fill per frame name (hash-seeded, flame palette)."""
    seed = sum(ord(c) for c in name)
    red = 205 + seed % 50
    green = 70 + (seed * 7) % 110
    return f"rgb({red},{green},54)"


def _render_node(
    parts: list[str], node: _Node, x: float, width: float, row: int, row_height: int
) -> None:
    y = row * row_height
    title = f"{node.name} ({node.count} samples)"
    parts.append(
        f'<g><title>{_escape(title)}</title>'
        f'<rect x="{x:.1f}" y="{y}" width="{max(width, 0.5):.1f}" '
        f'height="{row_height - 1}" fill="{_frame_color(node.name)}" '
        f'stroke="#fdf6e3"/>'
    )
    if width > 40:
        label = node.name if len(node.name) * 6 < width else node.name[: int(width / 6)]
        parts.append(
            f'<text x="{x + 2:.1f}" y="{y + row_height - 5}">{_escape(label)}</text>'
        )
    parts.append("</g>")
    child_x = x
    for name in sorted(node.children):
        child = node.children[name]
        child_width = width * child.count / node.count
        _render_node(parts, child, child_x, child_width, row + 1, row_height)
        child_x += child_width


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )
