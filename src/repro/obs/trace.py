"""Tracer — per-request span trees over the injectable Clock protocol.

A :class:`Span` covers one stage of work (a kernel interceptor stage, a DAO
resolve, a LoadStatus ranking, a transport attempt, a TimeHits sweep) and
nests children; the :class:`Tracer` maintains the active span stack and
keeps finished **root** spans in a bounded deque.  Time comes from a
:class:`repro.util.clock.Clock`, so under ``ManualClock`` or the simulation
engine's clock every trace is bit-for-bit deterministic — the same workload
produces the same span tree with the same timestamps.

Every root span opens a **trace**: it is assigned a 32-hex-digit trace id
(children inherit it) and each span gets a 16-hex-digit span id —
deterministic counters seeded from the tracer's name, not random bits, so
traces replay identically.  Cross-hop propagation uses the W3C Trace
Context wire shape: :meth:`Tracer.current_traceparent` renders the active
span as a ``00-<trace-id>-<span-id>-01`` header (carried in the SOAP
envelope / HTTP headers), and :meth:`Tracer.span_in_trace` opens a root
that *adopts* an incoming header's trace id — which is how client-side
transport spans and server-side pipeline spans join under one trace id
even when each side runs its own tracer.

Tracing is off by default and costs one attribute check at each
instrumentation point (``tracer is not None and tracer.enabled``); no span
objects are built while disabled.  Two export formats:

* :meth:`Tracer.export_jsonl` — one JSON object per root span (nested
  children), greppable and diffable;
* :meth:`Tracer.export_chrome` — Chrome trace-event format (``chrome://
  tracing`` / Perfetto), complete duration events with µs timestamps.
"""

from __future__ import annotations

import itertools
import json
import re
import threading
import zlib
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.util.clock import Clock, PerfClock

# -- W3C-traceparent-style context propagation ---------------------------------

#: header key carrying the trace context across hops
TRACEPARENT_HEADER = "traceparent"

_TRACEPARENT_RE = re.compile(r"^00-([0-9a-f]{32})-([0-9a-f]{16})-[0-9a-f]{2}$")


def format_traceparent(trace_id: str, span_id: str) -> str:
    """Render a W3C-style ``version-traceid-spanid-flags`` header value."""
    return f"00-{trace_id}-{span_id}-01"


def parse_traceparent(header: str | None) -> tuple[str, str] | None:
    """``(trace_id, parent_span_id)`` from a header, or None when malformed.

    Malformed/absent context must not fault a request — per the W3C spec a
    receiver that cannot parse ``traceparent`` restarts the trace.
    """
    if not header:
        return None
    match = _TRACEPARENT_RE.match(header.strip())
    if match is None:
        return None
    trace_id, span_id = match.group(1), match.group(2)
    if trace_id == "0" * 32 or span_id == "0" * 16:
        return None
    return trace_id, span_id


@dataclass
class Span:
    """One timed stage of work; ``end`` is None while the span is open.

    ``trace_id`` is shared by every span of one trace (roots mint it or
    adopt it from an incoming traceparent; children inherit); ``span_id``
    identifies this span within the trace.  Both are None on the throwaway
    spans a disabled tracer yields.
    """

    name: str
    start: float
    tags: dict[str, Any] = field(default_factory=dict)
    end: float | None = None
    children: list["Span"] = field(default_factory=list)
    trace_id: str | None = None
    span_id: str | None = None

    @property
    def duration(self) -> float:
        return 0.0 if self.end is None else self.end - self.start

    def iter_spans(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first, children in order."""
        yield self
        for child in self.children:
            yield from child.iter_spans()

    def find(self, name: str) -> list["Span"]:
        """Every span named *name* in this subtree (depth-first order)."""
        return [s for s in self.iter_spans() if s.name == name]

    @property
    def traceparent(self) -> str | None:
        """This span's context as a propagatable header value."""
        if self.trace_id is None or self.span_id is None:
            return None
        return format_traceparent(self.trace_id, self.span_id)

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
        }
        if self.trace_id is not None:
            out["trace_id"] = self.trace_id
            out["span_id"] = self.span_id
        if self.tags:
            out["tags"] = dict(self.tags)
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out


class _SpanContext:
    """Context manager opening a span on enter and closing it on exit."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc is not None:
            self._span.tags.setdefault("error", type(exc).__name__)
        self._tracer._finish(self._span)


class _NoopContext:
    """Returned while tracing is disabled; yields a throwaway span."""

    __slots__ = ("_span",)

    def __init__(self, name: str) -> None:
        self._span = Span(name=name, start=0.0, end=0.0)

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


class Tracer:
    """Span-tree builder over one clock; stack-based, with one active-span
    stack **per thread**: concurrent requests (the serving workers) each
    build their own span tree, children nest under their own thread's
    parent, and finished roots land in the shared bounded deque (appends
    are atomic).  Trace/span ids come from ``itertools.count`` — one atomic
    ``next()`` each — so ids stay unique and deterministic under
    concurrency (interleaving may vary *which* request gets which id, but
    never duplicates one).  ``spans_recorded`` is a plain counter
    (observability, near-exact under contention; exact once quiescent).
    """

    def __init__(
        self,
        clock: Clock | None = None,
        *,
        enabled: bool = False,
        max_traces: int = 256,
        name: str = "tracer",
    ) -> None:
        self.clock: Clock = clock or PerfClock()
        self.enabled = enabled
        #: distinguishes this tracer's minted ids from its peers' (the id
        #: prefix), e.g. "client" vs "registry" in a cross-hop test
        self.name = name
        self._tls = threading.local()
        #: finished root spans, oldest dropped beyond ``max_traces``
        self.traces: deque[Span] = deque(maxlen=max_traces)
        self.spans_recorded = 0
        self.traces_started = 0
        #: roots opened with a *present but malformed* traceparent — the
        #: broken-propagation signal (mirrored as repro_trace_restarts_total)
        self.traces_restarted = 0
        self._id_prefix = f"{zlib.crc32(name.encode('utf-8')) & 0xFFFFFFFF:08x}"
        self._trace_seq = itertools.count(1)
        self._span_seq = itertools.count(1)

    @property
    def _stack(self) -> list[Span]:
        """The calling thread's active-span stack."""
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    # -- id minting ------------------------------------------------------------

    def _new_trace_id(self) -> str:
        """Deterministic 32-hex trace id: tracer-name prefix + trace counter."""
        seq = next(self._trace_seq)
        self.traces_started += 1
        return f"{self._id_prefix}{seq:024x}"

    def _new_span_id(self) -> str:
        return f"{next(self._span_seq):016x}"

    # -- span lifecycle --------------------------------------------------------

    def span(self, name: str, **tags: Any):
        """Open a child of the current span (or a new root) as a context manager."""
        if not self.enabled:
            return _NoopContext(name)
        trace_id = self._stack[-1].trace_id if self._stack else self._new_trace_id()
        span = Span(
            name=name,
            start=self.clock.now(),
            tags=tags,
            trace_id=trace_id,
            span_id=self._new_span_id(),
        )
        self._stack.append(span)
        return _SpanContext(self, span)

    def span_in_trace(self, name: str, traceparent: str | None, **tags: Any):
        """Open a root span that *adopts* an incoming trace context.

        This is the server half of cross-hop propagation: a valid
        ``traceparent`` joins the caller's trace (the remote span id is kept
        as the ``remote_parent`` tag); a malformed or absent one starts a
        fresh trace, exactly like :meth:`span`.  With an active local parent
        span the in-process context wins — nesting already propagates the
        trace id.

        A *present but malformed* header must not fault the request (the
        W3C rule), but it must not restart the trace silently either: the
        new root is tagged ``trace_restarted`` and counted in
        :attr:`traces_restarted`, so broken propagation shows up in both
        the span tree and the metrics.
        """
        if not self.enabled:
            return _NoopContext(name)
        if self._stack or traceparent is None:
            return self.span(name, **tags)
        parsed = parse_traceparent(traceparent)
        if parsed is None:
            self.traces_restarted += 1
            restarted = self.span(name, **tags)
            restarted._span.tags["trace_restarted"] = True
            return restarted
        trace_id, parent_span_id = parsed
        span = Span(
            name=name,
            start=self.clock.now(),
            tags={**tags, "remote_parent": parent_span_id},
            trace_id=trace_id,
            span_id=self._new_span_id(),
        )
        self._stack.append(span)
        return _SpanContext(self, span)

    def current_traceparent(self) -> str | None:
        """The active span's context as a header value (None when inactive)."""
        if not self.enabled or not self._stack:
            return None
        return self._stack[-1].traceparent

    def current_span(self) -> Span | None:
        """The calling thread's active span (None when disabled or idle).

        Lets in-stage code — the route interceptor timing its forward hop —
        tag the span the kernel opened for its own stage.
        """
        if not self.enabled:
            return None
        stack = self._stack
        return stack[-1] if stack else None

    def event(self, name: str, **tags: Any) -> None:
        """A zero-duration marker span under the current span."""
        if not self.enabled:
            return
        now = self.clock.now()
        span = Span(
            name=name,
            start=now,
            end=now,
            tags=tags,
            trace_id=self._stack[-1].trace_id if self._stack else None,
            span_id=self._new_span_id(),
        )
        self._record(span)
        self.spans_recorded += 1

    def _finish(self, span: Span) -> None:
        span.end = self.clock.now()
        assert self._stack and self._stack[-1] is span, "span closed out of order"
        self._stack.pop()
        self._record(span)
        self.spans_recorded += 1

    def _record(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.traces.append(span)

    # -- accessors -------------------------------------------------------------

    def clear(self) -> None:
        """Drop kept traces and the *calling thread's* active-span stack."""
        self.traces.clear()
        self._stack.clear()

    def last_trace(self) -> Span | None:
        return self.traces[-1] if self.traces else None

    def stats(self) -> dict[str, Any]:
        return {
            "enabled": self.enabled,
            "traces_kept": len(self.traces),
            "spans_recorded": self.spans_recorded,
            "traces_restarted": self.traces_restarted,
        }

    # -- export ----------------------------------------------------------------

    def export_jsonl(self) -> str:
        """One JSON object per finished root span, oldest first."""
        return "\n".join(
            json.dumps(root.to_dict(), sort_keys=True) for root in self.traces
        ) + ("\n" if self.traces else "")

    def export_chrome(self) -> str:
        """Chrome trace-event JSON: complete ("X") events, µs timestamps."""
        events: list[dict[str, Any]] = []
        for root in self.traces:
            for span in root.iter_spans():
                event: dict[str, Any] = {
                    "name": span.name,
                    "ph": "X",
                    "ts": span.start * 1e6,
                    "dur": span.duration * 1e6,
                    "pid": 1,
                    "tid": 1,
                }
                if span.tags:
                    event["args"] = dict(span.tags)
                events.append(event)
        return json.dumps({"traceEvents": events, "displayTimeUnit": "ms"})
