"""Tracer — per-request span trees over the injectable Clock protocol.

A :class:`Span` covers one stage of work (a kernel interceptor stage, a DAO
resolve, a LoadStatus ranking, a transport attempt, a TimeHits sweep) and
nests children; the :class:`Tracer` maintains the active span stack and
keeps finished **root** spans in a bounded deque.  Time comes from a
:class:`repro.util.clock.Clock`, so under ``ManualClock`` or the simulation
engine's clock every trace is bit-for-bit deterministic — the same workload
produces the same span tree with the same timestamps.

Tracing is off by default and costs one attribute check at each
instrumentation point (``tracer is not None and tracer.enabled``); no span
objects are built while disabled.  Two export formats:

* :meth:`Tracer.export_jsonl` — one JSON object per root span (nested
  children), greppable and diffable;
* :meth:`Tracer.export_chrome` — Chrome trace-event format (``chrome://
  tracing`` / Perfetto), complete duration events with µs timestamps.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.util.clock import Clock, PerfClock


@dataclass
class Span:
    """One timed stage of work; ``end`` is None while the span is open."""

    name: str
    start: float
    tags: dict[str, Any] = field(default_factory=dict)
    end: float | None = None
    children: list["Span"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return 0.0 if self.end is None else self.end - self.start

    def iter_spans(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first, children in order."""
        yield self
        for child in self.children:
            yield from child.iter_spans()

    def find(self, name: str) -> list["Span"]:
        """Every span named *name* in this subtree (depth-first order)."""
        return [s for s in self.iter_spans() if s.name == name]

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
        }
        if self.tags:
            out["tags"] = dict(self.tags)
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out


class _SpanContext:
    """Context manager opening a span on enter and closing it on exit."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc is not None:
            self._span.tags.setdefault("error", type(exc).__name__)
        self._tracer._finish(self._span)


class _NoopContext:
    """Returned while tracing is disabled; yields a throwaway span."""

    __slots__ = ("_span",)

    def __init__(self, name: str) -> None:
        self._span = Span(name=name, start=0.0, end=0.0)

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


class Tracer:
    """Span-tree builder over one clock; single-threaded, stack-based."""

    def __init__(
        self,
        clock: Clock | None = None,
        *,
        enabled: bool = False,
        max_traces: int = 256,
    ) -> None:
        self.clock: Clock = clock or PerfClock()
        self.enabled = enabled
        self._stack: list[Span] = []
        #: finished root spans, oldest dropped beyond ``max_traces``
        self.traces: deque[Span] = deque(maxlen=max_traces)
        self.spans_recorded = 0

    # -- span lifecycle --------------------------------------------------------

    def span(self, name: str, **tags: Any):
        """Open a child of the current span (or a new root) as a context manager."""
        if not self.enabled:
            return _NoopContext(name)
        span = Span(name=name, start=self.clock.now(), tags=tags)
        self._stack.append(span)
        return _SpanContext(self, span)

    def event(self, name: str, **tags: Any) -> None:
        """A zero-duration marker span under the current span."""
        if not self.enabled:
            return
        now = self.clock.now()
        span = Span(name=name, start=now, end=now, tags=tags)
        self._record(span)
        self.spans_recorded += 1

    def _finish(self, span: Span) -> None:
        span.end = self.clock.now()
        assert self._stack and self._stack[-1] is span, "span closed out of order"
        self._stack.pop()
        self._record(span)
        self.spans_recorded += 1

    def _record(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.traces.append(span)

    # -- accessors -------------------------------------------------------------

    def clear(self) -> None:
        self.traces.clear()
        self._stack.clear()

    def last_trace(self) -> Span | None:
        return self.traces[-1] if self.traces else None

    def stats(self) -> dict[str, Any]:
        return {
            "enabled": self.enabled,
            "traces_kept": len(self.traces),
            "spans_recorded": self.spans_recorded,
        }

    # -- export ----------------------------------------------------------------

    def export_jsonl(self) -> str:
        """One JSON object per finished root span, oldest first."""
        return "\n".join(
            json.dumps(root.to_dict(), sort_keys=True) for root in self.traces
        ) + ("\n" if self.traces else "")

    def export_chrome(self) -> str:
        """Chrome trace-event JSON: complete ("X") events, µs timestamps."""
        events: list[dict[str, Any]] = []
        for root in self.traces:
            for span in root.iter_spans():
                event: dict[str, Any] = {
                    "name": span.name,
                    "ph": "X",
                    "ts": span.start * 1e6,
                    "dur": span.duration * 1e6,
                    "pid": 1,
                    "tid": 1,
                }
                if span.tags:
                    event["args"] = dict(span.tags)
                events.append(event)
        return json.dumps({"traceEvents": events, "displayTimeUnit": "ms"})
