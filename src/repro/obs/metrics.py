"""MetricsRegistry — labeled Counters/Gauges/Histograms with Prometheus text exposition.

The registry's runtime signals historically lived in five unrelated ad-hoc
surfaces (``PipelineStats``, ``TransportStats``, ``query_plan_stats``, the
constraint-cache counters, ``TimeHits`` tallies).  This module gives them
one common vocabulary:

* :class:`Counter` — monotonically increasing totals (requests, faults);
* :class:`Gauge` — point-in-time values (cache entries, monitor targets);
* :class:`Histogram` — distributions over fixed **log-scale buckets**
  (request latency), cumulative in exposition as Prometheus expects.

Metrics are *families*: a family owns its label names, and
:meth:`Metric.labels` returns the child series for one label-value
combination.  :meth:`MetricsRegistry.snapshot` and
:meth:`MetricsRegistry.render` are deterministic — families sorted by name,
series sorted by label values — so telemetry output is stable under a fixed
workload and directly assertable in tests.

The legacy ``*_stats()`` surfaces remain the source of truth: adapters
(:mod:`repro.obs.adapters`) sync their values into this registry at scrape
time, which is why :meth:`Counter.sync` exists alongside :meth:`Counter.inc`.

:func:`parse_exposition` is the strict inverse of :meth:`render` — the
telemetry smoke tests use it to prove ``/metrics`` output is valid
Prometheus text format, not just non-empty.

Histograms additionally carry OpenMetrics-style **exemplars**: an
observation made with ``observe(value, exemplar={"trace_id": ...})`` pins
its label set (and the observed value) to the bucket the observation landed
in, rendered as a ``# {trace_id="..."} <value>`` suffix on that
``_bucket`` line.  The strict parser round-trips them (``parse_exposition
(text, return_exemplars=True)``), which is how a p99 bucket links back to
the recorded trace of the request that filled it.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from dataclasses import dataclass
from typing import Any, Iterator

#: fixed log-scale latency buckets, 1 µs → 10 s (1/2.5/5 per decade)
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = tuple(
    round(10.0**exponent * mantissa, 12)
    for exponent in range(-6, 1)
    for mantissa in (1.0, 2.5, 5.0)
) + (10.0,)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: label values as stored on a child series: a tuple aligned with labelnames
LabelValues = tuple[str, ...]


def format_value(value: float) -> str:
    """Prometheus sample value: integers bare, floats via repr, inf as +Inf."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and value != value:  # NaN
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(labelnames: tuple[str, ...], values: LabelValues) -> str:
    if not labelnames:
        return ""
    pairs = ",".join(
        f'{name}="{escape_label_value(value)}"'
        for name, value in zip(labelnames, values)
    )
    return "{" + pairs + "}"


@dataclass(frozen=True)
class Exemplar:
    """One exemplar: the label set and observed value pinned to a bucket.

    ``labels`` correlates the sample with an external identity — in this
    repo always ``{"trace_id": ...}``, linking a latency bucket to the span
    tree of the request that landed there.
    """

    labels: tuple[tuple[str, str], ...]
    value: float

    def labels_dict(self) -> dict[str, str]:
        return dict(self.labels)

    def render(self) -> str:
        pairs = ",".join(
            f'{name}="{escape_label_value(value)}"' for name, value in self.labels
        )
        return f"# {{{pairs}}} {format_value(self.value)}"


class Metric:
    """One metric family: a name, a help string, and labeled child series."""

    type_name = "untyped"

    def __init__(self, name: str, help: str, labelnames: tuple[str, ...] = ()) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name: {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name: {label!r}")
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._children: dict[LabelValues, Any] = {}
        self._children_lock = threading.Lock()

    def labels(self, **labelvalues: Any):
        """The child series for one label-value combination (created lazily).

        Creation is locked so two threads racing on a new series always get
        the *same* child — a lost duplicate would silently drop every sample
        recorded into it.  The hit path stays a lock-free dict get.
        """
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"{self.name} requires labels {self.labelnames}, got "
                f"{tuple(sorted(labelvalues))}"
            )
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        child = self._children.get(key)
        if child is None:
            with self._children_lock:
                child = self._children.get(key)
                if child is None:
                    child = self._children[key] = self._new_child()
        return child

    def _default_child(self):
        """The single unlabeled series (for zero-label families)."""
        if self.labelnames:
            raise ValueError(f"{self.name} is labeled; use .labels(...)")
        return self.labels()

    def _new_child(self):  # pragma: no cover - subclasses override
        raise NotImplementedError

    def series(self) -> list[tuple[LabelValues, Any]]:
        """Children sorted by label values (the deterministic iteration order)."""
        return sorted(self._children.items())

    def samples(
        self,
    ) -> Iterator[tuple[str, tuple[str, ...], LabelValues, float, "Exemplar | None"]]:
        """(sample name, labelnames, labelvalues, value, exemplar) per line.

        The exemplar slot is None everywhere except histogram ``_bucket``
        samples whose bucket holds one.
        """
        raise NotImplementedError  # pragma: no cover - subclasses override


class _CounterChild:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        self.value += amount

    def sync(self, total: float) -> None:
        """Mirror an authoritative legacy counter (adapter use only)."""
        self.value = float(total)


class Counter(Metric):
    type_name = "counter"

    def _new_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    def samples(self):
        for values, child in self.series():
            yield self.name, self.labelnames, values, child.value, None


class _GaugeChild:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Gauge(Metric):
    type_name = "gauge"

    def _new_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value: float) -> None:
        self._default_child().set(value)

    def samples(self):
        for values, child in self.series():
            yield self.name, self.labelnames, values, child.value, None


class _HistogramChild:
    __slots__ = ("buckets", "counts", "sum", "count", "exemplars", "_lock")

    def __init__(self, buckets: tuple[float, ...]) -> None:
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)  # last slot: > max bucket (+Inf)
        self.sum = 0.0
        self.count = 0
        #: bucket index → latest Exemplar observed into that bucket
        self.exemplars: dict[int, Exemplar] = {}
        # observe is a three-field mutation; concurrent workers push the
        # request-latency histogram, and sum/count must never tear apart
        self._lock = threading.Lock()

    def observe(self, value: float, exemplar: dict[str, Any] | None = None) -> None:
        with self._lock:
            index = bisect_left(self.buckets, value)
            self.counts[index] += 1
            self.sum += value
            self.count += 1
            if exemplar:
                # latest-wins per bucket: the freshest trace that landed here
                self.exemplars[index] = Exemplar(
                    labels=tuple(
                        (str(k), str(v)) for k, v in sorted(exemplar.items())
                    ),
                    value=float(value),
                )

    def cumulative(self) -> list[int]:
        """Cumulative counts per upper bound, +Inf last (exposition shape)."""
        out, running = [], 0
        for count in self.counts:
            running += count
            out.append(running)
        return out

    def exemplars_snapshot(self) -> dict[int, Exemplar]:
        """Bucket index → exemplar, copied under the lock."""
        with self._lock:
            return dict(self.exemplars)


class Histogram(Metric):
    type_name = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: tuple[str, ...] = (),
        *,
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help, labelnames)
        if list(buckets) != sorted(buckets) or len(set(buckets)) != len(buckets):
            raise ValueError("histogram buckets must be strictly increasing")
        if "le" in labelnames:
            raise ValueError("'le' is reserved for histogram buckets")
        self.buckets = tuple(float(b) for b in buckets)

    def _new_child(self) -> _HistogramChild:
        return _HistogramChild(self.buckets)

    def observe(self, value: float, exemplar: dict[str, Any] | None = None) -> None:
        self._default_child().observe(value, exemplar)

    def samples(self):
        bucket_labels = self.labelnames + ("le",)
        bounds = [format_value(b) for b in self.buckets] + ["+Inf"]
        for values, child in self.series():
            exemplars = child.exemplars_snapshot()
            for index, (bound, cumulative) in enumerate(zip(bounds, child.cumulative())):
                yield (
                    f"{self.name}_bucket",
                    bucket_labels,
                    values + (bound,),
                    cumulative,
                    exemplars.get(index),
                )
            yield f"{self.name}_sum", self.labelnames, values, child.sum, None
            yield f"{self.name}_count", self.labelnames, values, child.count, None


class MetricsRegistry:
    """All metric families of one process, by name; get-or-create semantics."""

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}

    def _get_or_create(self, cls, name: str, help: str, labelnames, **kwargs):
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not cls or existing.labelnames != tuple(labelnames):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{existing.type_name}{existing.labelnames}"
                )
            return existing
        metric = cls(name, help, tuple(labelnames), **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str, labelnames=()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str, labelnames=()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self, name: str, help: str, labelnames=(), *, buckets=DEFAULT_LATENCY_BUCKETS
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labelnames, buckets=buckets
        )

    def metrics(self) -> list[Metric]:
        """Families sorted by name (the deterministic family order)."""
        return [self._metrics[name] for name in sorted(self._metrics)]

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """Deterministic plain-dict view of every family and series."""
        out: dict[str, dict[str, Any]] = {}
        for metric in self.metrics():
            out[metric.name] = {
                "type": metric.type_name,
                "help": metric.help,
                "samples": [
                    {
                        "name": sample_name,
                        "labels": dict(zip(labelnames, values)),
                        "value": value,
                        # exemplar key present only when the bucket holds one,
                        # so exemplar-free snapshots keep their legacy shape
                        **(
                            {
                                "exemplar": {
                                    "labels": exemplar.labels_dict(),
                                    "value": exemplar.value,
                                }
                            }
                            if exemplar is not None
                            else {}
                        ),
                    }
                    for sample_name, labelnames, values, value, exemplar
                    in metric.samples()
                ],
            }
        return out

    def render(self) -> str:
        """Prometheus text exposition format 0.0.4 for every family.

        Histogram buckets holding an exemplar render the OpenMetrics-style
        ``# {labels} value`` suffix after the sample value.
        """
        lines: list[str] = []
        for metric in self.metrics():
            lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.type_name}")
            for sample_name, labelnames, values, value, exemplar in metric.samples():
                line = (
                    f"{sample_name}{_render_labels(labelnames, values)} "
                    f"{format_value(value)}"
                )
                if exemplar is not None:
                    line += f" {exemplar.render()}"
                lines.append(line)
        return "\n".join(lines) + "\n"


# -- exposition parsing (test/smoke support) -----------------------------------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)"
    r"(?: # \{(?P<exemplar_labels>[^}]*)\} (?P<exemplar_value>[^ ]+))?$"
)
_LABEL_PAIR_RE = re.compile(
    r'(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"'
)


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    return float(text)


def _parse_labels(labels_text: str, lineno: int) -> dict[str, str]:
    """Strict label-pair parse shared by sample labels and exemplar labels."""
    labels: dict[str, str] = {}
    consumed = 0
    for pair in _LABEL_PAIR_RE.finditer(labels_text):
        labels[pair.group("name")] = (
            pair.group("value")
            .replace("\\n", "\n")
            .replace('\\"', '"')
            .replace("\\\\", "\\")
        )
        consumed += 1
    if consumed != labels_text.count("=") or consumed == 0:
        raise ValueError(f"line {lineno}: malformed labels: {labels_text!r}")
    return labels


def parse_exposition(
    text: str, *, return_exemplars: bool = False
) -> dict[str, dict[frozenset, float]] | tuple[
    dict[str, dict[frozenset, float]], dict[str, dict[frozenset, dict[str, Any]]]
]:
    """Parse Prometheus text format into ``{sample name: {labels: value}}``.

    Strict by design: every non-comment line must match the exposition
    grammar, every sample must belong to a family announced by a preceding
    ``# TYPE`` line, and duplicate series are rejected.  Raises
    :class:`ValueError` on any violation — the telemetry smoke test uses
    this as the "/metrics parses" gate.

    An OpenMetrics-style ``# {labels} value`` exemplar suffix is accepted on
    histogram ``_bucket`` samples only (rejected anywhere else).  With
    ``return_exemplars=True`` the result is ``(samples, exemplars)`` where
    the second dict maps ``{sample name: {labels: {"labels", "value"}}}`` —
    the round-trip surface the exemplar tests assert against.
    """
    families: dict[str, str] = {}
    out: dict[str, dict[frozenset, float]] = {}
    exemplars: dict[str, dict[frozenset, dict[str, Any]]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or parts[3] not in (
                "counter", "gauge", "histogram", "summary", "untyped"
            ):
                raise ValueError(f"line {lineno}: malformed TYPE line: {line!r}")
            families[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample line: {line!r}")
        name = match.group("name")
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in families:
                family = name[: -len(suffix)]
                break
        if family not in families:
            raise ValueError(f"line {lineno}: sample {name!r} has no TYPE line")
        labels_text = match.group("labels") or ""
        labels: dict[str, str] = {}
        if labels_text:
            labels = _parse_labels(labels_text, lineno)
        key = frozenset(labels.items())
        series = out.setdefault(name, {})
        if key in series:
            raise ValueError(f"line {lineno}: duplicate series: {line!r}")
        series[key] = _parse_value(match.group("value"))
        exemplar_labels = match.group("exemplar_labels")
        if exemplar_labels is not None:
            if families[family] != "histogram" or not name.endswith("_bucket"):
                raise ValueError(
                    f"line {lineno}: exemplar on a non-bucket sample: {line!r}"
                )
            exemplars.setdefault(name, {})[key] = {
                "labels": _parse_labels(exemplar_labels, lineno),
                "value": _parse_value(match.group("exemplar_value")),
            }
    if return_exemplars:
        return out, exemplars
    return out
