"""Declarative SLOs evaluated as multi-window burn rates over time series.

An :class:`SLO` names an objective over one event **source** — the fraction
of NodeStatus probes that succeed, the fraction of requests answered under
a latency threshold, the age of the newest NodeState sample — and the
:class:`SloEngine` turns the longitudinal record of that source into a
deterministic alert state:

* every event (``record_event``) lands in bounded ring-buffer series (the
  :mod:`repro.obs.timeseries` machinery) stamped from the injectable clock;
* :meth:`SloEngine.evaluate` computes the **burn rate** — observed bad
  fraction divided by the error budget ``1 - objective`` — over each of the
  SLO's windows (the classic short+long multi-window alert: a transient
  blip trips neither, a sustained outage trips both);
* the alert state is ``page`` when *every* window burns at or above
  ``page_burn``, ``warning`` when every window reaches ``warning_burn``,
  else ``ok``; state *transitions* are appended to a bounded timeline with
  their timestamps and burn rates, so an experiment's alert history is an
  assertable artifact.

Everything is deterministic under ``ManualClock``/sim time: the same
workload produces the same timeline, which is what the ``slo-smoke`` CI job
and ``ExperimentResult.slo_timeline`` rely on.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.obs.timeseries import TimeSeriesStore
from repro.util.clock import Clock, PerfClock

#: alert states in increasing severity
STATES = ("ok", "warning", "page")

#: how many state transitions the timeline retains
TIMELINE_CAPACITY = 256

#: sources the built-in definitions evaluate
REQUEST_SOURCE = "request"
PROBE_SOURCE = "probe"
STALENESS_SOURCE = "node_staleness"
REPLICATION_LAG_SOURCE = "replication_lag"


@dataclass(frozen=True)
class SLO:
    """One service-level objective over an event source.

    ``kind`` selects how events are judged:

    * ``availability`` — bad fraction = failed events / total events;
    * ``latency`` — bad fraction = events slower than ``threshold`` seconds;
    * ``staleness`` — bad fraction is 1.0 while the registered gauge for
      ``source`` exceeds ``threshold`` (a condition, not an event stream).

    ``windows`` are the burn-rate evaluation windows in seconds (all must
    burn for an alert — keep a short and a long one); ``objective`` is the
    target good fraction, whose complement is the error budget.
    """

    name: str
    kind: str
    source: str
    objective: float = 0.99
    threshold: float | None = None
    windows: tuple[float, ...] = (120.0, 600.0)
    warning_burn: float = 2.0
    page_burn: float = 10.0

    def __post_init__(self) -> None:
        if self.kind not in ("availability", "latency", "staleness"):
            raise ValueError(f"unknown SLO kind: {self.kind!r}")
        if self.kind in ("latency", "staleness") and self.threshold is None:
            raise ValueError(f"{self.kind} SLO {self.name!r} requires a threshold")
        if not self.windows:
            raise ValueError(f"SLO {self.name!r} needs at least one window")
        if not 0.0 < self.objective < 1.0:
            raise ValueError(f"SLO {self.name!r} objective must be in (0, 1)")

    @property
    def error_budget(self) -> float:
        return 1.0 - self.objective


def default_slos(
    *,
    latency_threshold: float = 0.5,
    staleness_threshold: float = 100.0,
    windows: tuple[float, ...] = (120.0, 600.0),
) -> tuple[SLO, ...]:
    """The standard registry SLO set (availability, latency, staleness).

    ``staleness_threshold`` defaults to 4× the thesis' 25 s TimeHits period
    — the same "missed four sweeps" bar the balancer's ``max_age`` uses.
    """
    return (
        SLO(
            name="probe-availability",
            kind="availability",
            source=PROBE_SOURCE,
            objective=0.99,
            windows=windows,
        ),
        SLO(
            name="request-latency",
            kind="latency",
            source=REQUEST_SOURCE,
            objective=0.95,
            threshold=latency_threshold,
            windows=windows,
        ),
        SLO(
            name="node-staleness",
            kind="staleness",
            source=STALENESS_SOURCE,
            objective=0.99,
            threshold=staleness_threshold,
            windows=windows,
        ),
    )


def replication_lag_slo(
    *,
    threshold: float = 64.0,
    objective: float = 0.99,
    windows: tuple[float, ...] = (120.0, 600.0),
) -> SLO:
    """The cluster's bounded-lag objective over the replication links.

    A ``staleness``-kind SLO reading the gauge registered under
    :data:`REPLICATION_LAG_SOURCE` — the worst (highest) changelog lag, in
    records, across a federation's replication links.  The condition burns
    while any follower trails its source by more than *threshold* records,
    turning the eventual-consistency promise into an alertable bound.
    """
    return SLO(
        name="replication-lag",
        kind="staleness",
        source=REPLICATION_LAG_SOURCE,
        objective=objective,
        threshold=threshold,
        windows=windows,
    )


@dataclass
class _SloState:
    slo: SLO
    state: str = "ok"
    evaluations: int = 0
    last_burn: dict[str, float] = field(default_factory=dict)


class SloEngine:
    """Burn-rate evaluation + alert state machine for one registry process.

    Event recording costs nothing while no SLO is defined (``active`` is the
    instrumentation guard); with SLOs defined, events append to bounded ring
    series and :meth:`evaluate` — called after every TimeHits sweep by the
    experiment harness, or on demand — advances the alert states.
    """

    def __init__(self, clock: Clock | None = None) -> None:
        self.clock: Clock = clock or PerfClock()
        #: event history (own bounded store, shares the engine clock)
        self.events = TimeSeriesStore(self.clock, enabled=True)
        self._slos: dict[str, _SloState] = {}
        self._gauges: dict[str, Callable[[], float]] = {}
        self.timeline: deque[dict[str, Any]] = deque(maxlen=TIMELINE_CAPACITY)
        self.transitions = 0

    # -- definition ------------------------------------------------------------

    @property
    def active(self) -> bool:
        """The hot-path guard: False while no SLO is defined."""
        return bool(self._slos)

    def add(self, slo: SLO) -> None:
        self._slos[slo.name] = _SloState(slo)

    def remove(self, name: str) -> bool:
        return self._slos.pop(name, None) is not None

    def slos(self) -> list[SLO]:
        return [self._slos[name].slo for name in sorted(self._slos)]

    def register_gauge(self, source: str, fn: Callable[[], float]) -> None:
        """Register the condition callable a ``staleness`` SLO reads."""
        self._gauges[source] = fn

    # -- event intake ----------------------------------------------------------

    def record_event(self, source: str, *, ok: bool, latency: float | None = None) -> None:
        """Account one good/bad event (and its latency, for latency SLOs)."""
        self.events.record(f"{source}.ok" if ok else f"{source}.err", 1.0)
        if latency is not None:
            self.events.record(f"{source}.latency", latency)

    # -- evaluation ------------------------------------------------------------

    def _bad_fraction(self, slo: SLO, since: float) -> float:
        if slo.kind == "availability":
            good = len(self.events.series(f"{slo.source}.ok").window(since))
            bad = len(self.events.series(f"{slo.source}.err").window(since))
            total = good + bad
            return bad / total if total else 0.0
        if slo.kind == "latency":
            values = self.events.series(f"{slo.source}.latency").values(since)
            if not values:
                return 0.0
            assert slo.threshold is not None
            slow = sum(1 for v in values if v > slo.threshold)
            return slow / len(values)
        # staleness: a point-in-time condition, identical across windows
        gauge = self._gauges.get(slo.source)
        if gauge is None:
            return 0.0
        assert slo.threshold is not None
        return 1.0 if gauge() > slo.threshold else 0.0

    def burn_rates(self, slo: SLO, *, now: float | None = None) -> dict[str, float]:
        """Burn rate per window: bad fraction over the error budget."""
        now = self.clock.now() if now is None else now
        return {
            f"{int(window)}s": self._bad_fraction(slo, now - window) / slo.error_budget
            for window in slo.windows
        }

    @staticmethod
    def _state_for(slo: SLO, burns: dict[str, float]) -> str:
        lowest = min(burns.values())
        if lowest >= slo.page_burn:
            return "page"
        if lowest >= slo.warning_burn:
            return "warning"
        return "ok"

    def evaluate(self, now: float | None = None) -> dict[str, str]:
        """Advance every SLO's alert state; record transitions on the timeline."""
        now = self.clock.now() if now is None else now
        states: dict[str, str] = {}
        for name in sorted(self._slos):
            tracked = self._slos[name]
            burns = self.burn_rates(tracked.slo, now=now)
            state = self._state_for(tracked.slo, burns)
            tracked.evaluations += 1
            tracked.last_burn = burns
            if state != tracked.state:
                self.transitions += 1
                self.timeline.append(
                    {
                        "t": now,
                        "slo": name,
                        "from": tracked.state,
                        "to": state,
                        "burn": dict(burns),
                    }
                )
                tracked.state = state
            states[name] = state
        return states

    # -- surfaces --------------------------------------------------------------

    def states(self) -> dict[str, str]:
        return {name: self._slos[name].state for name in sorted(self._slos)}

    def worst_state(self) -> str:
        """The most severe current state across all SLOs (``ok`` when none)."""
        worst = 0
        for tracked in self._slos.values():
            worst = max(worst, STATES.index(tracked.state))
        return STATES[worst]

    def snapshot(self) -> dict[str, Any]:
        """The telemetry snapshot surface: definitions, states, timeline."""
        return {
            "active": self.active,
            "transitions": self.transitions,
            "slos": {
                name: {
                    "kind": tracked.slo.kind,
                    "source": tracked.slo.source,
                    "objective": tracked.slo.objective,
                    "threshold": tracked.slo.threshold,
                    "state": tracked.state,
                    "evaluations": tracked.evaluations,
                    "burn": dict(tracked.last_burn),
                }
                for name, tracked in sorted(self._slos.items())
            },
            "timeline": list(self.timeline),
        }
