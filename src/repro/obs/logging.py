"""Structured JSON logging correlated with traces and requests.

Kernel stages, TimeHits sweeps, and LoadStatus decisions emit one
:class:`LogRecord`-shaped dict each through a shared :class:`StructuredLog`:
a timestamp from the injectable clock, an ``event`` name, and the
correlation fields (``trace_id``, ``request_id``, ``operation``, ``host``)
that let one discovery be followed from the client's transport attempt
through the server pipeline to the ranking decision it triggered.

The same enabled-guard discipline as tracing and time-series recording
applies: logging is off by default and each instrumentation point costs one
attribute check (``log is not None and log.enabled``).  Records land in a
bounded in-memory ring (the test sink) and, optionally, stream as JSON
lines to any writable (``emit_to``) for live tailing.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Callable

from repro.util.clock import Clock, PerfClock

#: how many records the in-memory sink retains (oldest evicted first)
DEFAULT_LOG_CAPACITY = 512


class StructuredLog:
    """Bounded in-memory JSON log with optional line streaming."""

    def __init__(
        self,
        clock: Clock | None = None,
        *,
        enabled: bool = False,
        capacity: int = DEFAULT_LOG_CAPACITY,
        emit_to: Callable[[str], Any] | None = None,
    ) -> None:
        self.clock: Clock = clock or PerfClock()
        #: the instrumentation guard: callers check this before building records
        self.enabled = enabled
        self.records: deque[dict[str, Any]] = deque(maxlen=capacity)
        self.emitted = 0
        #: optional line sink (e.g. ``sys.stderr.write``) fed JSON lines
        self.emit_to = emit_to

    def emit(self, event: str, **fields: Any) -> dict[str, Any]:
        """Record one structured event; None-valued fields are dropped."""
        record: dict[str, Any] = {"t": self.clock.now(), "event": event}
        for key, value in fields.items():
            if value is not None:
                record[key] = value
        self.records.append(record)
        self.emitted += 1
        if self.emit_to is not None:
            self.emit_to(json.dumps(record, sort_keys=True, default=str) + "\n")
        return record

    # -- query/test support ----------------------------------------------------

    def find(self, event: str, **fields: Any) -> list[dict[str, Any]]:
        """Records matching the event name and every given field value."""
        # atomic deque→list capture: emitters may append concurrently
        return [
            r
            for r in list(self.records)
            if r["event"] == event and all(r.get(k) == v for k, v in fields.items())
        ]

    def export_jsonl(self) -> str:
        """Every retained record as JSON lines, oldest first."""
        records = list(self.records)
        return "\n".join(
            json.dumps(record, sort_keys=True, default=str) for record in records
        ) + ("\n" if records else "")

    def clear(self) -> None:
        self.records.clear()

    def stats(self) -> dict[str, Any]:
        """The telemetry snapshot surface."""
        return {
            "enabled": self.enabled,
            "records_kept": len(self.records),
            "records_emitted": self.emitted,
        }
