"""Telemetry — the merged observability surface of one registry process.

One :class:`Telemetry` instance owns the three unified mechanisms the
``repro/obs`` subsystem provides and is the object
``RegistryServer.telemetry`` exposes:

* a :class:`~repro.obs.metrics.MetricsRegistry` populated at scrape time by
  registered **collectors** (see :mod:`repro.obs.adapters`) plus one pushed
  metric — the per-request latency histogram the kernel's account stage
  observes directly (a distribution cannot be reconstructed from the legacy
  aggregates);
* a :class:`~repro.obs.trace.Tracer` sharing the kernel's injectable
  monotonic clock, so pipeline latencies and span trees agree on what time
  it is (deterministic under ``ManualClock``/sim time);
* named snapshot **sources**: every legacy ``*_stats()`` surface registers
  under a stable name, and :meth:`snapshot` merges them into one dict — the
  payload of ``RegistryServer.telemetry_snapshot()`` and the ``repro
  stats`` CLI.

PR 5 adds the longitudinal layer, all sharing the same clock:

* :attr:`history` — a :class:`~repro.obs.timeseries.TimeSeriesStore`
  recording node sweeps and request latencies over time (off by default);
* :attr:`log` — a :class:`~repro.obs.logging.StructuredLog` of correlated
  JSON records (off by default);
* :attr:`slos` — a :class:`~repro.obs.slo.SloEngine` evaluating burn-rate
  alerts (inactive until an :class:`~repro.obs.slo.SLO` is added);
* named **health checks**: callables reporting ``ok``/``degraded``/
  ``unhealthy`` (e.g. node-staleness), folded with the SLO alert states
  into :meth:`health` — the ``/health`` payload degrades accordingly.

A **slow-request log** rides on the kernel hookup: requests whose latency
meets :attr:`slow_request_threshold` are captured into a bounded deque,
with the request's full span tree attached when tracing was on.

PR 9 adds the **cost-attribution plane**: with :attr:`attribution_enabled`
the kernel decomposes each request's wall time into ``queue_wait`` (serving
dispatch queue), ``stage`` (kernel pipeline, per-stage exclusive times),
``forward_hop`` (cross-member routing wire time), and ``wire`` (simulated
off-CPU IO), and this facade folds the split into histogram families
(``repro_request_cost_seconds``, ``repro_request_stage_seconds``), time
series, and the :meth:`attribution_stats` aggregate whose ``coverage``
field is the "attribution sums to ~total latency" acceptance gauge.
Latency histograms carry trace-id **exemplars** whenever tracing is on, so
a top bucket links to the recorded span tree (:meth:`exemplar_index`).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import TYPE_CHECKING, Any, Callable

from repro.obs.logging import StructuredLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SloEngine
from repro.obs.timeseries import TimeSeriesStore
from repro.obs.trace import Tracer
from repro.util.clock import Clock, PerfClock

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.adapters import Collector
    from repro.registry.kernel import RequestContext

#: how many slow-request entries are retained (oldest evicted first)
DEFAULT_SLOW_LOG_CAPACITY = 64

#: health statuses in increasing severity
HEALTH_STATUSES = ("ok", "degraded", "unhealthy")

#: SLO alert state → health status contribution
_SLO_HEALTH = {"ok": "ok", "warning": "degraded", "page": "unhealthy"}


def _worse(a: str, b: str) -> str:
    return a if HEALTH_STATUSES.index(a) >= HEALTH_STATUSES.index(b) else b


class Telemetry:
    """Metrics registry + tracer + snapshot sources for one registry."""

    def __init__(
        self,
        *,
        clock: Clock | None = None,
        slow_request_threshold: float | None = None,
        slow_log_capacity: int = DEFAULT_SLOW_LOG_CAPACITY,
        trace: bool = False,
        history: bool = False,
        log: bool = False,
        attribution: bool = False,
        tracer_name: str = "registry",
    ) -> None:
        self.clock: Clock = clock or PerfClock()
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(self.clock, enabled=trace, name=tracer_name)
        self.history = TimeSeriesStore(self.clock, enabled=history)
        self.log = StructuredLog(self.clock, enabled=log)
        self.slos = SloEngine(self.clock)
        self.slow_request_threshold = slow_request_threshold
        self.slow_requests: deque[dict[str, Any]] = deque(maxlen=slow_log_capacity)
        self._sources: dict[str, Callable[[], Any]] = {}
        self._collectors: dict[str, "Collector"] = {}
        self._health_checks: dict[str, Callable[[], Any]] = {}
        #: pushed by the kernel account stage; everything else is pulled.
        #: ``worker`` is the serving-worker label ("main" outside the
        #: supervisor), so fleet latency can be sliced per worker.
        self._request_latency = self.metrics.histogram(
            "repro_request_latency_seconds",
            "Kernel request latency by edge, operation, and serving worker.",
            ("edge", "operation", "worker"),
        )
        #: cost-attribution toggle — one bool the kernel layers check per
        #: stage; off by default so the hot path stays untouched
        self.attribution_enabled = bool(attribution)
        # the attribution/queue-wait families are created lazily on first
        # observation, so exposition output is unchanged until the cost
        # plane actually records something
        self._cost_hist = None
        self._stage_hist = None
        self._queue_wait_hist = None
        self._attr_lock = threading.Lock()
        self._attr_requests = 0
        self._attr_totals = {
            "queue_wait_s": 0.0,
            "stage_s": 0.0,
            "forward_hop_s": 0.0,
            "wire_s": 0.0,
            "total_s": 0.0,
        }
        self._attr_stages: dict[str, float] = {}

    # -- sources ---------------------------------------------------------------

    def register_source(
        self,
        name: str,
        snapshot: Callable[[], Any],
        *,
        collector: "Collector | None" = None,
    ) -> None:
        """Add (or replace) one named stats surface.

        ``snapshot`` is the legacy ``*_stats()`` callable merged verbatim by
        :meth:`snapshot`; ``collector`` optionally mirrors the same surface
        into :attr:`metrics` at scrape time.
        """
        self._sources[name] = snapshot
        if collector is not None:
            self._collectors[name] = collector
        else:
            self._collectors.pop(name, None)

    def unregister_source(self, name: str) -> bool:
        self._collectors.pop(name, None)
        return self._sources.pop(name, None) is not None

    def sources(self) -> list[str]:
        return sorted(self._sources)

    # -- merged views ----------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Every registered surface's current snapshot, by source name."""
        merged = {name: self._sources[name]() for name in sorted(self._sources)}
        merged["tracer"] = self.tracer.stats()
        merged["slow_requests"] = list(self.slow_requests)
        merged["timeseries"] = self.history.stats()
        merged["log"] = self.log.stats()
        merged["slo"] = self.slos.snapshot()
        merged["attribution"] = self.attribution_stats()
        return merged

    def collect(self) -> MetricsRegistry:
        """Run every collector, syncing the metrics registry to the sources."""
        for name in sorted(self._collectors):
            self._collectors[name](self.metrics)
        if self.tracer.traces_restarted:
            # created lazily: the family appears only once a malformed
            # traceparent has actually restarted a trace
            self.metrics.counter(
                "repro_trace_restarts_total",
                "Incoming requests whose malformed traceparent restarted "
                "the trace.",
            ).labels().sync(self.tracer.traces_restarted)
        return self.metrics

    def render_prometheus(self) -> str:
        """The ``/metrics`` payload: collect, then render text exposition."""
        return self.collect().render()

    def register_health_check(self, name: str, check: Callable[[], Any]) -> None:
        """Add (or replace) one named health check.

        ``check()`` returns a status string (``ok``/``degraded``/
        ``unhealthy``) or a dict with at least a ``"status"`` key; the worst
        status across all checks — and the SLO alert states, when SLOs are
        defined — becomes the overall :meth:`health` status.
        """
        self._health_checks[name] = check

    def unregister_health_check(self, name: str) -> bool:
        return self._health_checks.pop(name, None) is not None

    def health(self) -> dict[str, Any]:
        """The ``/health`` payload: liveness, surfaces, checks, SLO states."""
        status = "ok"
        checks: dict[str, Any] = {}
        for name in sorted(self._health_checks):
            result = self._health_checks[name]()
            if isinstance(result, str):
                result = {"status": result}
            checks[name] = result
            status = _worse(status, result.get("status", "ok"))
        if self.slos.active:
            slo_status = _SLO_HEALTH[self.slos.worst_state()]
            checks["slos"] = {"status": slo_status, "states": self.slos.states()}
            status = _worse(status, slo_status)
        payload: dict[str, Any] = {"status": status, "sources": self.sources()}
        if checks:
            payload["checks"] = checks
        return payload

    # -- kernel hookup ---------------------------------------------------------

    def record_request(self, ctx: "RequestContext") -> None:
        """Account one finished kernel request (called by the account stage)."""
        latency = ctx.latency
        # exemplar: the active trace id rides on whichever bucket this
        # observation lands in, so a p99 bucket names its slowest trace
        exemplar = {"trace_id": ctx.trace_id} if ctx.trace_id is not None else None
        self._request_latency.labels(
            edge=ctx.edge.name,
            operation=ctx.operation,
            worker=ctx.tags.get("worker", "main"),
        ).observe(latency, exemplar)
        if self.attribution_enabled:
            attribution = ctx.tags.get("attribution")
            if attribution is not None:
                self._record_attribution(ctx, attribution, exemplar)
        if self.history.enabled:
            self.history.record(f"request.{ctx.edge.name}.latency", latency)
        if self.slos.active:
            self.slos.record_event("request", ok=ctx.error is None, latency=latency)
        if self.log.enabled:
            self.log.emit(
                "request",
                trace_id=ctx.trace_id,
                request_id=ctx.request_id,
                edge=ctx.edge.name,
                operation=ctx.operation,
                latency_s=latency,
                fault_code=ctx.error.code if ctx.error is not None else None,
            )
        threshold = self.slow_request_threshold
        if threshold is not None and latency >= threshold:
            entry: dict[str, Any] = {
                "request_id": ctx.request_id,
                "edge": ctx.edge.name,
                "operation": ctx.operation,
                "latency_s": latency,
                "fault_code": ctx.error.code if ctx.error is not None else None,
            }
            self.slow_requests.append(entry)
            # the kernel attaches the span tree once the root span closes
            ctx.tags["slow_request"] = entry

    # -- cost attribution ------------------------------------------------------

    def record_queue_wait(self, worker: str, seconds: float) -> None:
        """Account one dispatch-queue wait (serving worker pick-up hook)."""
        hist = self._queue_wait_hist
        if hist is None:
            hist = self._queue_wait_hist = self.metrics.histogram(
                "repro_serving_queue_wait_seconds",
                "Dispatch-queue wait from enqueue to worker pick-up.",
                ("worker",),
            )
        hist.labels(worker=worker).observe(seconds)
        if self.history.enabled:
            self.history.record("serving.queue_wait", seconds)

    def _record_attribution(
        self,
        ctx: "RequestContext",
        attribution: dict[str, Any],
        exemplar: dict[str, str] | None,
    ) -> None:
        """Fold one request's cost split into families, series, aggregates."""
        cost = self._cost_hist
        if cost is None:
            cost = self._cost_hist = self.metrics.histogram(
                "repro_request_cost_seconds",
                "Per-request wall-time attribution by component "
                "(queue_wait / stage / forward_hop / wire).",
                ("edge", "component"),
            )
        stage_hist = self._stage_hist
        if stage_hist is None:
            stage_hist = self._stage_hist = self.metrics.histogram(
                "repro_request_stage_seconds",
                "Exclusive kernel pipeline time per stage "
                "(route excludes its forward hop).",
                ("stage",),
            )
        edge = ctx.edge.name
        cost.labels(edge=edge, component="queue_wait").observe(
            attribution["queue_wait_s"], exemplar
        )
        cost.labels(edge=edge, component="stage").observe(
            attribution["stage_s"], exemplar
        )
        # hop/wire components only exist on forwarded / wire-delayed
        # requests; zero observations would drown the distributions
        if attribution["forward_hop_s"]:
            cost.labels(edge=edge, component="forward_hop").observe(
                attribution["forward_hop_s"], exemplar
            )
        if attribution["wire_s"]:
            cost.labels(edge=edge, component="wire").observe(
                attribution["wire_s"], exemplar
            )
        for stage_name, seconds in attribution["stages"].items():
            stage_hist.labels(stage=stage_name).observe(seconds)
        with self._attr_lock:
            self._attr_requests += 1
            for key in self._attr_totals:
                self._attr_totals[key] += attribution[key]
            for stage_name, seconds in attribution["stages"].items():
                self._attr_stages[stage_name] = (
                    self._attr_stages.get(stage_name, 0.0) + seconds
                )
        if self.history.enabled:
            self.history.record("attribution.queue_wait", attribution["queue_wait_s"])
            self.history.record("attribution.stage", attribution["stage_s"])
            self.history.record(
                "attribution.forward_hop", attribution["forward_hop_s"]
            )

    def attribution_stats(self) -> dict[str, Any]:
        """The ``attribution`` snapshot source: component sums + coverage.

        ``coverage`` is the fraction of measured request wall time (queue
        wait + wire + kernel) the named components account for — the
        "splits sum to ~total latency" gauge the serving bench gates on.
        """
        with self._attr_lock:
            totals = dict(self._attr_totals)
            stages = dict(sorted(self._attr_stages.items()))
            requests = self._attr_requests
        attributed = (
            totals["queue_wait_s"] + totals["stage_s"] + totals["forward_hop_s"]
        )
        total = totals["total_s"]
        return {
            "enabled": self.attribution_enabled,
            "requests": requests,
            **totals,
            "attributed_s": attributed,
            "coverage": (attributed / total) if total > 0 else 1.0,
            "stages": stages,
        }

    def exemplar_index(self) -> list[dict[str, Any]]:
        """Top-bucket exemplars across every histogram family.

        One entry per series holding at least one exemplar: the *highest*
        exemplar-bearing bucket wins (the slowest traced observation), so
        ``repro top`` can jump from a p99 bucket to the recorded span tree.
        Deterministic order: family name, then label values.
        """
        from repro.obs.metrics import format_value

        out: list[dict[str, Any]] = []
        for metric in self.metrics.metrics():
            if metric.type_name != "histogram":
                continue
            for values, child in metric.series():
                exemplars = child.exemplars_snapshot()
                if not exemplars:
                    continue
                top = max(exemplars)
                bounds = child.buckets
                le = format_value(bounds[top]) if top < len(bounds) else "+Inf"
                entry = exemplars[top]
                out.append(
                    {
                        "metric": metric.name,
                        "labels": dict(zip(metric.labelnames, values)),
                        "le": le,
                        "value": entry.value,
                        **entry.labels_dict(),
                    }
                )
        return out

    def find_trace(self, trace_id: str) -> dict[str, Any] | None:
        """The recorded span tree for *trace_id*, if any survived retention.

        Slow-request entries (which persist their span tree) are searched
        first, then the tracer's bounded root-span deque.
        """
        for entry in reversed(self.slow_requests):
            trace = entry.get("trace")
            if trace is not None and trace.get("trace_id") == trace_id:
                return trace
        for root in reversed(self.tracer.traces):
            if root.trace_id == trace_id:
                return root.to_dict()
        return None
