"""Telemetry — the merged observability surface of one registry process.

One :class:`Telemetry` instance owns the three unified mechanisms the
``repro/obs`` subsystem provides and is the object
``RegistryServer.telemetry`` exposes:

* a :class:`~repro.obs.metrics.MetricsRegistry` populated at scrape time by
  registered **collectors** (see :mod:`repro.obs.adapters`) plus one pushed
  metric — the per-request latency histogram the kernel's account stage
  observes directly (a distribution cannot be reconstructed from the legacy
  aggregates);
* a :class:`~repro.obs.trace.Tracer` sharing the kernel's injectable
  monotonic clock, so pipeline latencies and span trees agree on what time
  it is (deterministic under ``ManualClock``/sim time);
* named snapshot **sources**: every legacy ``*_stats()`` surface registers
  under a stable name, and :meth:`snapshot` merges them into one dict — the
  payload of ``RegistryServer.telemetry_snapshot()`` and the ``repro
  stats`` CLI.

A **slow-request log** rides on the kernel hookup: requests whose latency
meets :attr:`slow_request_threshold` are captured into a bounded deque,
with the request's full span tree attached when tracing was on.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Callable

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.util.clock import Clock, PerfClock

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.adapters import Collector
    from repro.registry.kernel import RequestContext

#: how many slow-request entries are retained (oldest evicted first)
DEFAULT_SLOW_LOG_CAPACITY = 64


class Telemetry:
    """Metrics registry + tracer + snapshot sources for one registry."""

    def __init__(
        self,
        *,
        clock: Clock | None = None,
        slow_request_threshold: float | None = None,
        slow_log_capacity: int = DEFAULT_SLOW_LOG_CAPACITY,
        trace: bool = False,
    ) -> None:
        self.clock: Clock = clock or PerfClock()
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(self.clock, enabled=trace)
        self.slow_request_threshold = slow_request_threshold
        self.slow_requests: deque[dict[str, Any]] = deque(maxlen=slow_log_capacity)
        self._sources: dict[str, Callable[[], Any]] = {}
        self._collectors: dict[str, "Collector"] = {}
        #: pushed by the kernel account stage; everything else is pulled
        self._request_latency = self.metrics.histogram(
            "repro_request_latency_seconds",
            "Kernel request latency by edge and operation.",
            ("edge", "operation"),
        )

    # -- sources ---------------------------------------------------------------

    def register_source(
        self,
        name: str,
        snapshot: Callable[[], Any],
        *,
        collector: "Collector | None" = None,
    ) -> None:
        """Add (or replace) one named stats surface.

        ``snapshot`` is the legacy ``*_stats()`` callable merged verbatim by
        :meth:`snapshot`; ``collector`` optionally mirrors the same surface
        into :attr:`metrics` at scrape time.
        """
        self._sources[name] = snapshot
        if collector is not None:
            self._collectors[name] = collector
        else:
            self._collectors.pop(name, None)

    def unregister_source(self, name: str) -> bool:
        self._collectors.pop(name, None)
        return self._sources.pop(name, None) is not None

    def sources(self) -> list[str]:
        return sorted(self._sources)

    # -- merged views ----------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Every registered surface's current snapshot, by source name."""
        merged = {name: self._sources[name]() for name in sorted(self._sources)}
        merged["tracer"] = self.tracer.stats()
        merged["slow_requests"] = list(self.slow_requests)
        return merged

    def collect(self) -> MetricsRegistry:
        """Run every collector, syncing the metrics registry to the sources."""
        for name in sorted(self._collectors):
            self._collectors[name](self.metrics)
        return self.metrics

    def render_prometheus(self) -> str:
        """The ``/metrics`` payload: collect, then render text exposition."""
        return self.collect().render()

    def health(self) -> dict[str, Any]:
        """The ``/health`` payload: liveness plus the mounted surfaces."""
        return {"status": "ok", "sources": self.sources()}

    # -- kernel hookup ---------------------------------------------------------

    def record_request(self, ctx: "RequestContext") -> None:
        """Account one finished kernel request (called by the account stage)."""
        latency = ctx.latency
        self._request_latency.labels(
            edge=ctx.edge.name, operation=ctx.operation
        ).observe(latency)
        threshold = self.slow_request_threshold
        if threshold is not None and latency >= threshold:
            entry: dict[str, Any] = {
                "request_id": ctx.request_id,
                "edge": ctx.edge.name,
                "operation": ctx.operation,
                "latency_s": latency,
                "fault_code": ctx.error.code if ctx.error is not None else None,
            }
            self.slow_requests.append(entry)
            # the kernel attaches the span tree once the root span closes
            ctx.tags["slow_request"] = entry
