"""Telemetry — the merged observability surface of one registry process.

One :class:`Telemetry` instance owns the three unified mechanisms the
``repro/obs`` subsystem provides and is the object
``RegistryServer.telemetry`` exposes:

* a :class:`~repro.obs.metrics.MetricsRegistry` populated at scrape time by
  registered **collectors** (see :mod:`repro.obs.adapters`) plus one pushed
  metric — the per-request latency histogram the kernel's account stage
  observes directly (a distribution cannot be reconstructed from the legacy
  aggregates);
* a :class:`~repro.obs.trace.Tracer` sharing the kernel's injectable
  monotonic clock, so pipeline latencies and span trees agree on what time
  it is (deterministic under ``ManualClock``/sim time);
* named snapshot **sources**: every legacy ``*_stats()`` surface registers
  under a stable name, and :meth:`snapshot` merges them into one dict — the
  payload of ``RegistryServer.telemetry_snapshot()`` and the ``repro
  stats`` CLI.

PR 5 adds the longitudinal layer, all sharing the same clock:

* :attr:`history` — a :class:`~repro.obs.timeseries.TimeSeriesStore`
  recording node sweeps and request latencies over time (off by default);
* :attr:`log` — a :class:`~repro.obs.logging.StructuredLog` of correlated
  JSON records (off by default);
* :attr:`slos` — a :class:`~repro.obs.slo.SloEngine` evaluating burn-rate
  alerts (inactive until an :class:`~repro.obs.slo.SLO` is added);
* named **health checks**: callables reporting ``ok``/``degraded``/
  ``unhealthy`` (e.g. node-staleness), folded with the SLO alert states
  into :meth:`health` — the ``/health`` payload degrades accordingly.

A **slow-request log** rides on the kernel hookup: requests whose latency
meets :attr:`slow_request_threshold` are captured into a bounded deque,
with the request's full span tree attached when tracing was on.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Callable

from repro.obs.logging import StructuredLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SloEngine
from repro.obs.timeseries import TimeSeriesStore
from repro.obs.trace import Tracer
from repro.util.clock import Clock, PerfClock

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.adapters import Collector
    from repro.registry.kernel import RequestContext

#: how many slow-request entries are retained (oldest evicted first)
DEFAULT_SLOW_LOG_CAPACITY = 64

#: health statuses in increasing severity
HEALTH_STATUSES = ("ok", "degraded", "unhealthy")

#: SLO alert state → health status contribution
_SLO_HEALTH = {"ok": "ok", "warning": "degraded", "page": "unhealthy"}


def _worse(a: str, b: str) -> str:
    return a if HEALTH_STATUSES.index(a) >= HEALTH_STATUSES.index(b) else b


class Telemetry:
    """Metrics registry + tracer + snapshot sources for one registry."""

    def __init__(
        self,
        *,
        clock: Clock | None = None,
        slow_request_threshold: float | None = None,
        slow_log_capacity: int = DEFAULT_SLOW_LOG_CAPACITY,
        trace: bool = False,
        history: bool = False,
        log: bool = False,
        tracer_name: str = "registry",
    ) -> None:
        self.clock: Clock = clock or PerfClock()
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(self.clock, enabled=trace, name=tracer_name)
        self.history = TimeSeriesStore(self.clock, enabled=history)
        self.log = StructuredLog(self.clock, enabled=log)
        self.slos = SloEngine(self.clock)
        self.slow_request_threshold = slow_request_threshold
        self.slow_requests: deque[dict[str, Any]] = deque(maxlen=slow_log_capacity)
        self._sources: dict[str, Callable[[], Any]] = {}
        self._collectors: dict[str, "Collector"] = {}
        self._health_checks: dict[str, Callable[[], Any]] = {}
        #: pushed by the kernel account stage; everything else is pulled.
        #: ``worker`` is the serving-worker label ("main" outside the
        #: supervisor), so fleet latency can be sliced per worker.
        self._request_latency = self.metrics.histogram(
            "repro_request_latency_seconds",
            "Kernel request latency by edge, operation, and serving worker.",
            ("edge", "operation", "worker"),
        )

    # -- sources ---------------------------------------------------------------

    def register_source(
        self,
        name: str,
        snapshot: Callable[[], Any],
        *,
        collector: "Collector | None" = None,
    ) -> None:
        """Add (or replace) one named stats surface.

        ``snapshot`` is the legacy ``*_stats()`` callable merged verbatim by
        :meth:`snapshot`; ``collector`` optionally mirrors the same surface
        into :attr:`metrics` at scrape time.
        """
        self._sources[name] = snapshot
        if collector is not None:
            self._collectors[name] = collector
        else:
            self._collectors.pop(name, None)

    def unregister_source(self, name: str) -> bool:
        self._collectors.pop(name, None)
        return self._sources.pop(name, None) is not None

    def sources(self) -> list[str]:
        return sorted(self._sources)

    # -- merged views ----------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Every registered surface's current snapshot, by source name."""
        merged = {name: self._sources[name]() for name in sorted(self._sources)}
        merged["tracer"] = self.tracer.stats()
        merged["slow_requests"] = list(self.slow_requests)
        merged["timeseries"] = self.history.stats()
        merged["log"] = self.log.stats()
        merged["slo"] = self.slos.snapshot()
        return merged

    def collect(self) -> MetricsRegistry:
        """Run every collector, syncing the metrics registry to the sources."""
        for name in sorted(self._collectors):
            self._collectors[name](self.metrics)
        return self.metrics

    def render_prometheus(self) -> str:
        """The ``/metrics`` payload: collect, then render text exposition."""
        return self.collect().render()

    def register_health_check(self, name: str, check: Callable[[], Any]) -> None:
        """Add (or replace) one named health check.

        ``check()`` returns a status string (``ok``/``degraded``/
        ``unhealthy``) or a dict with at least a ``"status"`` key; the worst
        status across all checks — and the SLO alert states, when SLOs are
        defined — becomes the overall :meth:`health` status.
        """
        self._health_checks[name] = check

    def unregister_health_check(self, name: str) -> bool:
        return self._health_checks.pop(name, None) is not None

    def health(self) -> dict[str, Any]:
        """The ``/health`` payload: liveness, surfaces, checks, SLO states."""
        status = "ok"
        checks: dict[str, Any] = {}
        for name in sorted(self._health_checks):
            result = self._health_checks[name]()
            if isinstance(result, str):
                result = {"status": result}
            checks[name] = result
            status = _worse(status, result.get("status", "ok"))
        if self.slos.active:
            slo_status = _SLO_HEALTH[self.slos.worst_state()]
            checks["slos"] = {"status": slo_status, "states": self.slos.states()}
            status = _worse(status, slo_status)
        payload: dict[str, Any] = {"status": status, "sources": self.sources()}
        if checks:
            payload["checks"] = checks
        return payload

    # -- kernel hookup ---------------------------------------------------------

    def record_request(self, ctx: "RequestContext") -> None:
        """Account one finished kernel request (called by the account stage)."""
        latency = ctx.latency
        self._request_latency.labels(
            edge=ctx.edge.name,
            operation=ctx.operation,
            worker=ctx.tags.get("worker", "main"),
        ).observe(latency)
        if self.history.enabled:
            self.history.record(f"request.{ctx.edge.name}.latency", latency)
        if self.slos.active:
            self.slos.record_event("request", ok=ctx.error is None, latency=latency)
        if self.log.enabled:
            self.log.emit(
                "request",
                trace_id=ctx.trace_id,
                request_id=ctx.request_id,
                edge=ctx.edge.name,
                operation=ctx.operation,
                latency_s=latency,
                fault_code=ctx.error.code if ctx.error is not None else None,
            )
        threshold = self.slow_request_threshold
        if threshold is not None and latency >= threshold:
            entry: dict[str, Any] = {
                "request_id": ctx.request_id,
                "edge": ctx.edge.name,
                "operation": ctx.operation,
                "latency_s": latency,
                "fault_code": ctx.error.code if ctx.error is not None else None,
            }
            self.slow_requests.append(entry)
            # the kernel attaches the span tree once the root span closes
            ctx.tags["slow_request"] = entry
