"""Bounded ring-buffer time series: how node health and latency *evolve*.

Point-in-time telemetry (gauge snapshots, per-request spans) answers "what
is the cluster doing now"; the load-balancing feedback loop also needs
"what has it been doing" — TimeHits samples every NodeStatus host each
25 s, and whether a host is healthy, flapping, or slowly degrading is only
visible across sweeps.  This module stores that history:

* a :class:`TimeSeries` is one named, bounded ring buffer of ``(t, value)``
  points (oldest evicted beyond ``capacity``) with windowed summaries —
  min/max/avg/p50/p99 over the last N seconds of whatever clock feeds it
  (sim time under the experiment harness, wall time in a live process);
* a :class:`TimeSeriesStore` owns the process' series, keyed by dotted
  name (``node.<host>.load``, ``request.<edge>.latency``, …), all stamped
  from one injectable :class:`~repro.util.clock.Clock` so histories are
  bit-for-bit deterministic under ``ManualClock``/sim time;
* **flag series** record boolean state *transitions* only (an eligibility
  flip costs one point, steady state costs zero), which is what
  :meth:`TimeSeriesStore.flapping` reads to detect hosts oscillating in
  and out of constraint eligibility.

Recording is off by default and every instrumentation point is guarded
(``store.enabled``), so the kernel/discovery hot paths pay one attribute
check when history is disabled.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any

from repro.util.clock import Clock, PerfClock

#: points retained per series (oldest evicted first)
DEFAULT_SERIES_CAPACITY = 1024

#: eligibility transitions within the window that classify a host as flapping
DEFAULT_FLAP_TRANSITIONS = 3

#: flag-series prefix used for constraint-eligibility transitions
ELIGIBLE_PREFIX = "eligible."


def percentile(ordered: list[float], fraction: float) -> float:
    """Nearest-rank percentile over an already-sorted sample list."""
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, int(len(ordered) * fraction))
    return ordered[index]


class TimeSeries:
    """One bounded series of ``(t, value)`` points, oldest evicted first."""

    __slots__ = ("name", "points", "recorded", "last_value")

    def __init__(self, name: str, *, capacity: int = DEFAULT_SERIES_CAPACITY) -> None:
        self.name = name
        self.points: deque[tuple[float, float]] = deque(maxlen=capacity)
        #: total points ever recorded (not capped by the ring capacity)
        self.recorded = 0
        #: most recent value, None before the first record
        self.last_value: float | None = None

    def record(self, t: float, value: float) -> None:
        self.points.append((t, float(value)))
        self.recorded += 1
        self.last_value = float(value)

    def window(self, since: float) -> list[tuple[float, float]]:
        """Points with ``t >= since``, oldest first."""
        # atomic deque→list capture: a concurrent recorder must not resize
        # the ring mid-scan
        return [p for p in list(self.points) if p[0] >= since]

    def values(self, since: float) -> list[float]:
        return [v for t, v in list(self.points) if t >= since]

    def last(self) -> tuple[float, float] | None:
        return self.points[-1] if self.points else None

    def summary(self, since: float) -> dict[str, float | int]:
        """min/max/avg/p50/p99 of the window (zeros for an empty window)."""
        values = sorted(self.values(since))
        if not values:
            return {"count": 0, "min": 0.0, "max": 0.0, "avg": 0.0, "p50": 0.0, "p99": 0.0}
        return {
            "count": len(values),
            "min": values[0],
            "max": values[-1],
            "avg": sum(values) / len(values),
            "p50": percentile(values, 0.50),
            "p99": percentile(values, 0.99),
        }


class TimeSeriesStore:
    """Every longitudinal series of one process, stamped from one clock."""

    def __init__(
        self,
        clock: Clock | None = None,
        *,
        capacity: int = DEFAULT_SERIES_CAPACITY,
        enabled: bool = False,
    ) -> None:
        self.clock: Clock = clock or PerfClock()
        self.capacity = capacity
        #: the instrumentation guard: callers check this before recording
        self.enabled = enabled
        self._series: dict[str, TimeSeries] = {}
        self._create_lock = threading.Lock()

    # -- recording -------------------------------------------------------------

    def series(self, name: str) -> TimeSeries:
        """The named series (created empty on first use).

        Creation is locked so two concurrent recorders of a brand-new name
        share one ring; the steady-state path is a lock-free dict get.
        """
        series = self._series.get(name)
        if series is None:
            with self._create_lock:
                series = self._series.get(name)
                if series is None:
                    series = self._series[name] = TimeSeries(
                        name, capacity=self.capacity
                    )
        return series

    def record(self, name: str, value: float, *, t: float | None = None) -> None:
        """Append one point, stamped from the store clock unless ``t`` given."""
        self.series(name).record(self.clock.now() if t is None else t, value)

    def record_flag(self, name: str, value: bool, *, t: float | None = None) -> None:
        """Record a boolean state *transition* (no point while state holds).

        The first record always lands (it establishes the state); afterwards
        a point is stored only when the state flips, so a stable flag costs
        one ring slot total and :meth:`transitions` counts real flips.
        """
        series = self.series(name)
        numeric = 1.0 if value else 0.0
        if series.last_value == numeric:
            return
        series.record(self.clock.now() if t is None else t, numeric)

    # -- windowed queries ------------------------------------------------------

    def window_summary(self, name: str, duration: float) -> dict[str, float | int]:
        """min/max/avg/p50/p99 over the last ``duration`` seconds of ``name``."""
        return self.series(name).summary(self.clock.now() - duration)

    def transitions(self, name: str, duration: float) -> int:
        """Flag flips recorded in the last ``duration`` seconds.

        The establishing record of a flag series only counts when it landed
        inside the window *and* flipped an earlier, already-evicted state —
        indistinguishable here, so it is counted; for flap detection an
        extra unit of noise on a genuinely-transitioning host is harmless.
        """
        return len(self.series(name).window(self.clock.now() - duration))

    def flapping(
        self,
        duration: float,
        *,
        prefix: str = ELIGIBLE_PREFIX,
        min_transitions: int = DEFAULT_FLAP_TRANSITIONS,
    ) -> list[str]:
        """Hosts whose eligibility flipped ≥ ``min_transitions`` times lately.

        Scans every flag series under ``prefix`` (default: the constraint
        eligibility flags LoadStatus records) and returns the suffixes —
        host names — sorted, so a flapping host is identifiable even while
        its *current* sample looks healthy.
        """
        since = self.clock.now() - duration
        out = []
        for name in sorted(self._series):
            if not name.startswith(prefix):
                continue
            if len(self._series[name].window(since)) >= min_transitions:
                out.append(name[len(prefix):])
        return out

    # -- surfaces --------------------------------------------------------------

    def names(self) -> list[str]:
        return sorted(self._series)

    def high_water_marks(self) -> dict[str, int]:
        """Boundedness evidence: series count, fullest ring, total recorded."""
        all_series = list(self._series.values())
        return {
            "series": len(all_series),
            "capacity": self.capacity,
            "max_points": max((len(s.points) for s in all_series), default=0),
            "points_recorded": sum(s.recorded for s in all_series),
        }

    def stats(self) -> dict[str, Any]:
        """The telemetry snapshot surface: marks + per-series tallies."""
        marks = self.high_water_marks()
        return {
            "enabled": self.enabled,
            **marks,
            "per_series": {
                name: {
                    "points": len(series.points),
                    "recorded": series.recorded,
                    "last": series.last_value,
                }
                for name, series in sorted(self._series.items())
            },
        }

    def clear(self) -> None:
        self._series.clear()
