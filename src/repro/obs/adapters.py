"""Adapters syncing the legacy ``*_stats()`` surfaces into a MetricsRegistry.

Each adapter is a factory: it captures the component owning one ad-hoc stats
surface (the kernel's PipelineStats, the transport's TransportStats, the
query planner counters, the constraint/URI caches, the TimeHits collector,
the LoadStatus/resolver pair) and returns a **collector** — a callable the
:class:`repro.obs.telemetry.Telemetry` facade runs at scrape time to mirror
the surface's current values into Prometheus-shaped series.

Pull-at-scrape keeps two properties the tentpole requires:

* the legacy snapshot APIs stay intact and remain the source of truth, so
  exported values are *identical by construction* to what
  ``pipeline_stats()`` / ``transport_stats()`` / ``query_plan_stats()`` /
  ``cache_stats()`` / ``collector_stats()`` report;
* nothing is added to any hot path — components keep bumping their plain
  ints, and the conversion cost is paid only when ``/metrics`` is scraped
  or a snapshot is taken.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.load_status import LoadStatus
    from repro.core.monitor import TimeHits
    from repro.core.service_constraint import ServiceConstraint
    from repro.persistence.dao import ServiceDAO
    from repro.registry.querymgr import QueryManager
    from repro.registry.server import RegistryServer
    from repro.serving.supervisor import ServingSupervisor
    from repro.soap.transport import SimTransport

Collector = Callable[[MetricsRegistry], None]


def pipeline_collector(server: "RegistryServer") -> Collector:
    """Mirror the kernel's per-edge, per-operation PipelineStats."""

    def collect(metrics: MetricsRegistry) -> None:
        labels = ("edge", "operation")
        requests = metrics.counter(
            "repro_pipeline_requests_total", "Requests through the kernel pipeline.", labels
        )
        faults = metrics.counter(
            "repro_pipeline_faults_total", "Requests that ended in a registry fault.", labels
        )
        fault_codes = metrics.counter(
            "repro_pipeline_fault_codes_total",
            "Faults by registry error code.",
            labels + ("code",),
        )
        latency_total = metrics.counter(
            "repro_pipeline_latency_seconds_total",
            "Summed request latency per edge and operation.",
            labels,
        )
        latency_max = metrics.gauge(
            "repro_pipeline_latency_seconds_max",
            "Maximum observed request latency.",
            labels,
        )
        for edge, ops in server.pipeline_stats().items():
            for operation, stats in ops.items():
                series = {"edge": edge, "operation": operation}
                requests.labels(**series).sync(stats["count"])
                faults.labels(**series).sync(stats["faults"])
                latency_total.labels(**series).sync(stats["total_latency_s"])
                latency_max.labels(**series).set(stats["max_latency_s"])
                for code, count in stats["fault_codes"].items():
                    fault_codes.labels(code=code, **series).sync(count)

    return collect


def transport_collector(transport: "SimTransport") -> Collector:
    """Mirror TransportStats, including per-endpoint failure/retry attribution."""

    def collect(metrics: MetricsRegistry) -> None:
        snap = transport.transport_stats()
        metrics.counter(
            "repro_transport_requests_total", "Wire attempts through the transport."
        ).labels().sync(snap["requests"])
        metrics.counter(
            "repro_transport_failures_total", "Failed wire attempts."
        ).labels().sync(snap["failures"])
        metrics.counter(
            "repro_transport_wire_seconds_total", "Summed simulated round-trip time."
        ).labels().sync(snap["total_latency_s"])
        metrics.counter(
            "repro_transport_retries_total", "Retry-stage retries spent."
        ).labels().sync(snap["retries"])
        metrics.counter(
            "repro_transport_backoff_seconds_total", "Summed retry backoff charged."
        ).labels().sync(snap["backoff_total_s"])
        metrics.counter(
            "repro_transport_recovered_total",
            "Retried requests that ultimately succeeded.",
        ).labels().sync(snap["recovered_after_retry"])
        metrics.counter(
            "repro_transport_exhausted_total",
            "Retried requests whose retries were exhausted.",
        ).labels().sync(snap["exhausted_retries"])
        per_requests = metrics.counter(
            "repro_transport_endpoint_requests_total",
            "Wire attempts per endpoint URI.",
            ("endpoint",),
        )
        per_failures = metrics.counter(
            "repro_transport_endpoint_failures_total",
            "Failed attempts attributed per endpoint URI.",
            ("endpoint",),
        )
        per_retries = metrics.counter(
            "repro_transport_endpoint_retries_total",
            "Retries attributed per endpoint URI.",
            ("endpoint",),
        )
        per_backoff = metrics.counter(
            "repro_transport_endpoint_backoff_seconds_total",
            "Backoff charged per endpoint URI.",
            ("endpoint",),
        )
        per_recovered = metrics.counter(
            "repro_transport_endpoint_recovered_total",
            "Requests recovered after retry per endpoint URI.",
            ("endpoint",),
        )
        per_exhausted = metrics.counter(
            "repro_transport_endpoint_exhausted_total",
            "Requests with exhausted retries per endpoint URI.",
            ("endpoint",),
        )
        for uri, count in snap["per_endpoint"].items():
            per_requests.labels(endpoint=uri).sync(count)
        for uri, count in snap["per_endpoint_failures"].items():
            per_failures.labels(endpoint=uri).sync(count)
        for uri, count in snap["per_endpoint_retries"].items():
            per_retries.labels(endpoint=uri).sync(count)
        for uri, backoff in snap["per_endpoint_backoff_s"].items():
            per_backoff.labels(endpoint=uri).sync(backoff)
        for uri, count in snap["per_endpoint_recovered"].items():
            per_recovered.labels(endpoint=uri).sync(count)
        for uri, count in snap["per_endpoint_exhausted"].items():
            per_exhausted.labels(endpoint=uri).sync(count)

    return collect


def planner_collector(qm: "QueryManager") -> Collector:
    """Mirror the query planner counters (plan cache, subqueries, rows)."""

    def collect(metrics: MetricsRegistry) -> None:
        for key, value in qm.query_plan_stats().items():
            metrics.counter(
                f"repro_query_{key}_total", f"Query engine counter {key!r}."
            ).labels().sync(value)

    return collect


def constraint_cache_collector(service_constraint: "ServiceConstraint") -> Collector:
    """Mirror the ServiceConstraint parse-cache counters."""

    def collect(metrics: MetricsRegistry) -> None:
        snap = service_constraint.cache_stats()
        metrics.counter(
            "repro_constraint_cache_hits_total", "Constraint parse-cache hits."
        ).labels().sync(snap["hits"])
        metrics.counter(
            "repro_constraint_cache_misses_total", "Constraint parse-cache misses."
        ).labels().sync(snap["misses"])
        metrics.gauge(
            "repro_constraint_cache_entries", "Cached constraint parses."
        ).set(snap["entries"])

    return collect


def uri_cache_collector(services: "ServiceDAO") -> Collector:
    """Mirror the ServiceDAO access-URI resolution-cache counters."""

    def collect(metrics: MetricsRegistry) -> None:
        snap = services.uri_cache_stats()
        metrics.counter(
            "repro_uri_cache_hits_total", "Access-URI resolution-cache hits."
        ).labels().sync(snap["hits"])
        metrics.counter(
            "repro_uri_cache_misses_total", "Access-URI resolution-cache misses."
        ).labels().sync(snap["misses"])
        metrics.gauge(
            "repro_uri_cache_entries", "Cached per-service URI resolutions."
        ).set(snap["entries"])

    return collect


def serving_collector(supervisor: "ServingSupervisor") -> Collector:
    """Mirror the ServingSupervisor admission/queue counters."""

    def collect(metrics: MetricsRegistry) -> None:
        snap = supervisor.serving_stats()
        metrics.gauge(
            "repro_serving_queue_depth", "Requests waiting in the dispatch queue."
        ).set(snap["queue_depth"])
        metrics.gauge(
            "repro_serving_queue_capacity", "Dispatch queue bound."
        ).set(snap["queue_capacity"])
        metrics.gauge(
            "repro_serving_queue_depth_high_water",
            "Deepest dispatch queue observed at admission (saturation "
            "early-warning; the queue-wait histogram is pushed separately).",
        ).set(snap["queue_depth_high_water"])
        metrics.gauge(
            "repro_serving_workers", "Registry worker threads in the fleet."
        ).set(snap["workers"])
        metrics.counter(
            "repro_serving_accepted_total", "Requests admitted to the queue."
        ).labels().sync(snap["accepted"])
        metrics.counter(
            "repro_serving_rejected_total", "Requests shed at a full queue."
        ).labels().sync(snap["rejected"])
        served = metrics.counter(
            "repro_serving_requests_served_total",
            "Requests executed, per worker.",
            ("worker",),
        )
        for label, count in snap["served_per_worker"].items():
            served.labels(worker=label).sync(count)

    return collect


def writes_collector(server: "RegistryServer") -> Collector:
    """Mirror the CQRS write-spine counters (changelog, batching, idempotency)."""

    def collect(metrics: MetricsRegistry) -> None:
        snap = server.write_stats()
        metrics.counter(
            "repro_writes_total", "Heap mutations committed through the store."
        ).labels().sync(snap["writes"])
        metrics.counter(
            "repro_writes_batched_total", "Mutations committed inside a batch."
        ).labels().sync(snap["batched_writes"])
        metrics.counter(
            "repro_writes_coalesced_total",
            "Mutations absorbed by write-behind coalescing.",
        ).labels().sync(snap["coalesced_writes"])
        metrics.counter(
            "repro_changelog_records_total", "Change records appended to the spine."
        ).labels().sync(snap["changelog_records"])
        metrics.counter(
            "repro_changelog_resets_total", "Rollback barriers in the changelog."
        ).labels().sync(snap["resets"])
        metrics.gauge(
            "repro_changelog_last_seq", "Sequence number of the newest record."
        ).set(snap["last_seq"])
        metrics.counter(
            "repro_idempotent_duplicates_total",
            "Lifecycle retries replayed from a recorded result.",
        ).labels().sync(snap["idempotent_duplicates"])
        metrics.gauge(
            "repro_idempotency_keys", "Recorded idempotency keys retained."
        ).set(snap["idempotency_keys"])

    return collect


def monitor_collector(monitor: "TimeHits") -> Collector:
    """Mirror the TimeHits collection-cycle tallies."""

    def collect(metrics: MetricsRegistry) -> None:
        snap = monitor.collector_stats()
        metrics.counter(
            "repro_monitor_collections_total", "TimeHits monitoring sweeps run."
        ).labels().sync(snap["collections"])
        metrics.counter(
            "repro_monitor_samples_stored_total", "NodeState samples stored."
        ).labels().sync(snap["samples_stored"])
        metrics.counter(
            "repro_monitor_failures_total", "Unreachable/invalid NodeStatus replies."
        ).labels().sync(snap["failures"])
        metrics.gauge(
            "repro_monitor_targets", "Published NodeStatus endpoints monitored."
        ).set(snap["targets"])
        metrics.gauge(
            "repro_monitor_period_seconds", "Configured collection period."
        ).set(snap["period_s"])
        endpoint_failures = metrics.counter(
            "repro_monitor_endpoint_failures_total",
            "Failed NodeStatus invocations per target URI.",
            ("endpoint",),
        )
        for uri, count in snap["endpoint_failures"].items():
            endpoint_failures.labels(endpoint=uri).sync(count)

    return collect


def load_status_collector(load_status: "LoadStatus", resolver=None) -> Collector:
    """Mirror LoadStatus ranking counters (and the resolver's, when given)."""

    def collect(metrics: MetricsRegistry) -> None:
        snap = load_status.load_status_stats()
        metrics.counter(
            "repro_loadstatus_rankings_total", "LoadStatus host rankings computed."
        ).labels().sync(snap["rankings"])
        metrics.counter(
            "repro_loadstatus_stale_samples_total",
            "Sample lookups rejected as stale.",
        ).labels().sync(snap["stale_samples"])
        if resolver is not None:
            metrics.counter(
                "repro_resolver_resolutions_total", "Binding resolutions performed."
            ).labels().sync(resolver.resolutions)
            metrics.counter(
                "repro_resolver_balanced_resolutions_total",
                "Resolutions that applied constraint balancing.",
            ).labels().sync(resolver.balanced_resolutions)

    return collect
