"""Unified observability: metrics registry, request tracing, telemetry facade.

The runtime signals of the load-balancing feedback loop (pipeline, transport,
planner, caches, monitor, rankings) publish into one exportable surface —
see DESIGN.md's "Observability" section for the architecture.
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_exposition,
)
from repro.obs.telemetry import Telemetry
from repro.obs.trace import Span, Tracer

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Telemetry",
    "Tracer",
    "parse_exposition",
]
