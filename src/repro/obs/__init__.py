"""Unified observability: metrics registry, request tracing, telemetry facade.

The runtime signals of the load-balancing feedback loop (pipeline, transport,
planner, caches, monitor, rankings) publish into one exportable surface —
see DESIGN.md's "Observability" section for the architecture.  PR 5 adds
the longitudinal layer: bounded time-series history, SLO burn-rate
alerting, cross-hop trace propagation, and correlated structured logging.
"""

from repro.obs.logging import StructuredLog
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Exemplar,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_exposition,
)
from repro.obs.profile import SamplingProfiler
from repro.obs.slo import SLO, SloEngine, default_slos, replication_lag_slo
from repro.obs.telemetry import Telemetry
from repro.obs.timeseries import TimeSeries, TimeSeriesStore
from repro.obs.trace import (
    Span,
    Tracer,
    format_traceparent,
    parse_traceparent,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Exemplar",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SLO",
    "SamplingProfiler",
    "SloEngine",
    "Span",
    "StructuredLog",
    "Telemetry",
    "TimeSeries",
    "TimeSeriesStore",
    "Tracer",
    "default_slos",
    "replication_lag_slo",
    "format_traceparent",
    "parse_exposition",
    "parse_traceparent",
]
