"""Registry state snapshots: save/load a whole registry to/from JSON.

freebXML persisted across restarts through Derby; this module gives the
in-memory reproduction the same durability: every registry object (via the
SOAP serializer), the NodeState monitoring table, repository items, and the
authentication records round-trip through one JSON document, so CLI
invocations and long-running studies can span processes.
"""

from __future__ import annotations

import base64
import json
from typing import TYPE_CHECKING, Any

from repro.persistence.nodestate import NodeSample
from repro.soap.serializer import deserialize, serialize

if TYPE_CHECKING:  # pragma: no cover
    from repro.registry.server import RegistryServer

FORMAT_VERSION = 1


def dump_registry(registry: "RegistryServer") -> dict[str, Any]:
    """Capture a registry's durable state as a JSON-safe dict."""
    objects = []
    for type_name in registry.store.type_names():
        objects.extend(
            serialize(obj) for obj in registry.store.objects_of_type(type_name)
        )
    node_rows = [
        {
            "host": s.host,
            "load": s.load,
            "memory": s.memory,
            "swapMemory": s.swap_memory,
            "updated": s.updated,
        }
        for s in registry.node_state.all_samples()
    ]
    repository_items = [
        {
            "objectId": object_id,
            "content": base64.b64encode(item.content).decode("ascii"),
            "mimeType": item.mime_type,
        }
        for object_id, item in sorted(registry.repository._items.items())
    ]
    authority = registry.authority
    return {
        "format": FORMAT_VERSION,
        "home": registry.home,
        "objects": objects,
        "nodeState": node_rows,
        "repositoryItems": repository_items,
        "fingerprints": dict(registry.authenticator._fingerprints),
        "eventSequence": registry.lcm._event_sequence,
        "authority": {
            "name": authority.name,
            "publicKey": authority.keypair.public_key,
            "privateKey": authority.keypair.private_key,
        },
    }


def load_registry(registry: "RegistryServer", state: dict[str, Any]) -> int:
    """Restore durable state into a *fresh* registry; returns objects loaded.

    The target registry must be empty (load-into-live would need merge
    semantics the format does not define).
    """
    if state.get("format") != FORMAT_VERSION:
        raise ValueError(f"unsupported snapshot format: {state.get('format')!r}")
    if registry.store.count() != 0:
        raise ValueError("load_registry requires an empty registry")
    count = 0
    for data in state["objects"]:
        registry.store.insert_object(deserialize(data))
        count += 1
    for row in state["nodeState"]:
        registry.node_state.record_sample(
            NodeSample(
                host=row["host"],
                load=row["load"],
                memory=row["memory"],
                swap_memory=row["swapMemory"],
                updated=row["updated"],
            )
        )
    for item in state["repositoryItems"]:
        from repro.registry.repository import RepositoryItem

        registry.repository._items[item["objectId"]] = RepositoryItem(
            object_id=item["objectId"],
            content=base64.b64decode(item["content"]),
            mime_type=item["mimeType"],
        )
    registry.authenticator._fingerprints.update(state["fingerprints"])
    registry.lcm._event_sequence = state.get("eventSequence", 0)
    authority_state = state.get("authority")
    if authority_state:
        from repro.security.certs import KeyPair

        authority = registry.authority
        authority.name = authority_state["name"]
        authority.keypair = KeyPair(
            public_key=authority_state["publicKey"],
            private_key=authority_state["privateKey"],
        )
        authority.certificate = authority._self_signed()
    return count


def save_registry_file(registry: "RegistryServer", path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(dump_registry(registry), handle, indent=1)


def load_registry_file(registry: "RegistryServer", path: str) -> int:
    with open(path, "r", encoding="utf-8") as handle:
        return load_registry(registry, json.load(handle))
