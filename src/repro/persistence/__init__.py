"""Persistence substrate: in-memory datastore, tables, DAO layer, NodeState.

Replaces freebXML's Apache-Derby-backed ``SQLPersistenceManagerImpl`` with an
in-memory equivalent that preserves the behaviours the registry relies on:
per-request transactions, primary-key uniqueness, per-class DAO access, and
the load-balancing scheme's ``NodeState`` table.
"""

from repro.persistence.changelog import ChangeLog, ChangeRecord
from repro.persistence.datastore import DataStore
from repro.persistence.views import ChangelogView, QueryResultView, ServiceUriView
from repro.persistence.dao import (
    BindingResolver,
    DAORegistry,
    DefaultBindingResolver,
    GenericDAO,
    ServiceBindingDAO,
    ServiceDAO,
)
from repro.persistence.nodestate import NODESTATE_TABLE, NodeSample, NodeStateStore
from repro.persistence.table import Table

__all__ = [
    "ChangeLog",
    "ChangeRecord",
    "ChangelogView",
    "DataStore",
    "QueryResultView",
    "ServiceUriView",
    "BindingResolver",
    "DAORegistry",
    "DefaultBindingResolver",
    "GenericDAO",
    "ServiceBindingDAO",
    "ServiceDAO",
    "NODESTATE_TABLE",
    "NodeSample",
    "NodeStateStore",
    "Table",
]
