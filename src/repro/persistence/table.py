"""An in-memory relational-style table.

Replaces Apache Derby for this reproduction: each table has a schema (ordered
column names), a primary key, optional secondary indexes, and predicate-based
selects.  Rows are plain dicts; the table owns copies so callers can't mutate
stored state behind its back.  The registry's metadata itself is stored as
Python objects by the DAO layer — tables carry the *relational* pieces the
thesis calls out explicitly (NodeState, audit rows) and back the SQL-92
query engine.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterable, Iterator

from repro.util.errors import InvalidRequestError, ObjectExistsError, ObjectNotFoundError

Row = dict[str, Any]
Predicate = Callable[[Row], bool]


class Table:
    """A named table with a primary key and optional secondary indexes.

    Concurrency: mutators serialize on a per-table lock (multi-step index
    maintenance must not interleave); point reads are lock-free single dict
    operations, and scans capture ``list(self._rows.values())`` — one atomic
    C-level copy under the GIL — before iterating, so a concurrent writer can
    never resize the dict mid-scan.
    """

    def __init__(
        self,
        name: str,
        columns: Iterable[str],
        *,
        primary_key: str,
        indexes: Iterable[str] = (),
    ) -> None:
        self.name = name
        self.columns = tuple(columns)
        if primary_key not in self.columns:
            raise InvalidRequestError(
                f"primary key {primary_key!r} not among columns of table {name!r}"
            )
        self.primary_key = primary_key
        #: monotonic write counter — caches layered on a table (e.g. the
        #: NodeState sample cache) validate against it instead of subscribing
        self.mutations = 0
        self._rows: dict[Any, Row] = {}
        self._indexes: dict[str, dict[Any, set[Any]]] = {}
        self._lock = threading.Lock()
        for column in indexes:
            self.add_index(column)

    # -- schema ----------------------------------------------------------

    def add_index(self, column: str) -> None:
        """Create a secondary (non-unique) index over *column*."""
        if column not in self.columns:
            raise InvalidRequestError(f"no column {column!r} in table {self.name!r}")
        with self._lock:
            index: dict[Any, set[Any]] = {}
            for key, row in self._rows.items():
                index.setdefault(row.get(column), set()).add(key)
            self._indexes[column] = index

    def _check_row(self, row: Row) -> Row:
        unknown = set(row) - set(self.columns)
        if unknown:
            raise InvalidRequestError(
                f"unknown columns {sorted(unknown)} for table {self.name!r}"
            )
        if self.primary_key not in row or row[self.primary_key] is None:
            raise InvalidRequestError(
                f"row for table {self.name!r} missing primary key {self.primary_key!r}"
            )
        # Normalize: absent columns become None.
        return {column: row.get(column) for column in self.columns}

    # -- mutation ----------------------------------------------------------

    def insert(self, row: Row) -> None:
        """Insert a new row; duplicate primary key raises ObjectExistsError."""
        row = self._check_row(row)
        key = row[self.primary_key]
        with self._lock:
            if key in self._rows:
                raise ObjectExistsError(
                    str(key), f"duplicate key in {self.name!r}: {key!r}"
                )
            self._rows[key] = row
            self._index_add(key, row)
            self.mutations += 1

    def upsert(self, row: Row) -> bool:
        """Insert-or-replace; returns True if a row was replaced."""
        row = self._check_row(row)
        key = row[self.primary_key]
        with self._lock:
            existed = key in self._rows
            if existed:
                self._index_remove(key, self._rows[key])
            self._rows[key] = row
            self._index_add(key, row)
            self.mutations += 1
            return existed

    def update(self, key: Any, changes: Row) -> Row:
        """Apply a partial update to the row with primary key *key*."""
        unknown = set(changes) - set(self.columns)
        if unknown:
            raise InvalidRequestError(
                f"unknown columns {sorted(unknown)} for table {self.name!r}"
            )
        if changes.get(self.primary_key, key) != key:
            raise InvalidRequestError("primary key updates are not supported")
        with self._lock:
            if key not in self._rows:
                raise ObjectNotFoundError(str(key), f"no row {key!r} in {self.name!r}")
            old = self._rows[key]
            self._index_remove(key, old)
            new = {**old, **changes}
            self._rows[key] = new
            self._index_add(key, new)
            self.mutations += 1
            return dict(new)

    def delete(self, key: Any) -> None:
        with self._lock:
            if key not in self._rows:
                raise ObjectNotFoundError(str(key), f"no row {key!r} in {self.name!r}")
            self._index_remove(key, self._rows[key])
            del self._rows[key]
            self.mutations += 1

    def clear(self) -> None:
        with self._lock:
            self._rows.clear()
            for index in self._indexes.values():
                index.clear()
            self.mutations += 1

    # -- queries -----------------------------------------------------------

    def get(self, key: Any) -> Row | None:
        row = self._rows.get(key)
        return dict(row) if row is not None else None

    def get_view(self, key: Any) -> Row | None:
        """The stored row itself — read-only by contract, no copy.

        Hot-path accessor (the per-query NodeState lookup); mutations must
        go through :meth:`upsert`/:meth:`update` to keep indexes consistent.
        """
        return self._rows.get(key)

    def require(self, key: Any) -> Row:
        row = self.get(key)
        if row is None:
            raise ObjectNotFoundError(str(key), f"no row {key!r} in {self.name!r}")
        return row

    def select(self, predicate: Predicate | None = None) -> list[Row]:
        """Return copies of all rows matching *predicate* (all rows if None)."""
        rows = list(self._rows.values())  # atomic capture; iterate the copy
        if predicate is None:
            return [dict(row) for row in rows]
        return [dict(row) for row in rows if predicate(row)]

    def select_eq(self, column: str, value: Any) -> list[Row]:
        """Equality select, using the secondary index when one exists."""
        index = self._indexes.get(column)
        if index is not None:
            rows = self._rows
            return [
                dict(row)
                for key in sorted(index.get(value, ()), key=str)
                if (row := rows.get(key)) is not None
            ]
        return self.select(lambda row: row.get(column) == value)

    def keys(self) -> list[Any]:
        return list(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter([dict(row) for row in list(self._rows.values())])

    def __contains__(self, key: Any) -> bool:
        return key in self._rows

    # -- snapshot support (transactions) ------------------------------------

    def snapshot(self) -> dict[Any, Row]:
        """Cheap copy of table state for transaction rollback."""
        with self._lock:
            return {key: dict(row) for key, row in self._rows.items()}

    def restore(self, snapshot: dict[Any, Row]) -> None:
        with self._lock:
            self._rows = {key: dict(row) for key, row in snapshot.items()}
            self.mutations += 1
            columns = list(self._indexes)
            self._indexes.clear()
            for column in columns:
                index: dict[Any, set[Any]] = {}
                for key, row in self._rows.items():
                    index.setdefault(row.get(column), set()).add(key)
                self._indexes[column] = index

    # -- index maintenance ---------------------------------------------------

    def _index_add(self, key: Any, row: Row) -> None:
        for column, index in self._indexes.items():
            index.setdefault(row.get(column), set()).add(key)

    def _index_remove(self, key: Any, row: Row) -> None:
        for column, index in self._indexes.items():
            bucket = index.get(row.get(column))
            if bucket is not None:
                bucket.discard(key)
                if not bucket:
                    del index[row.get(column)]
