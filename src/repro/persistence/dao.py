"""DAO layer: typed accessors per ebRIM class, mirroring freebXML's XxxDAO classes.

Thesis §2.2.3: "classes named XxxDAO where Xxx maps to a class defined by
ebRIM … provide support for the corresponding RIM class using an RDBMS".
The two classes the load-balancing scheme *modifies* are ``ServiceDAO`` and
``ServiceBindingDAO`` (Figures 3.5/3.6): at discovery time ServiceDAO
populates the binding list through a **binding resolver**, which by default
returns all bindings in publisher order and which the core package replaces
with the constraint-aware LoadStatus resolver.  That pluggable seam is the
exact modification point of the thesis, kept as a strategy so the substrate
stays independent of the contribution.
"""

from __future__ import annotations

from typing import Callable, Protocol, Sequence

from repro.persistence.datastore import DataStore
from repro.rim import (
    AdhocQuery,
    Association,
    AssociationType,
    AuditableEvent,
    Classification,
    ClassificationNode,
    ClassificationScheme,
    ExternalIdentifier,
    ExternalLink,
    ExtrinsicObject,
    Organization,
    RegistryObject,
    RegistryPackage,
    Service,
    ServiceBinding,
    SpecificationLink,
    Subscription,
    User,
)
from repro.util.errors import InvalidRequestError, ObjectNotFoundError


class GenericDAO:
    """Shared CRUD over the object heap for one ebRIM class."""

    #: the RIM class this DAO serves; subclasses set it.
    RIM_CLASS: type[RegistryObject] = RegistryObject

    def __init__(self, store: DataStore) -> None:
        self.store = store

    @property
    def type_name(self) -> str:
        return self.RIM_CLASS.__name__

    def insert(self, obj: RegistryObject) -> None:
        self._check_type(obj)
        self.store.insert_object(obj)

    def save(self, obj: RegistryObject) -> None:
        self._check_type(obj)
        self.store.save_object(obj)

    def get(self, object_id: str):
        obj = self.store.get_object(object_id)
        if obj is not None and not isinstance(obj, self.RIM_CLASS):
            return None
        return obj

    def get_view(self, object_id: str):
        """The stored instance, read-only and uncopied (discovery hot path)."""
        obj = self.store.get_view(object_id)
        if obj is not None and not isinstance(obj, self.RIM_CLASS):
            return None
        return obj

    def require(self, object_id: str):
        obj = self.get(object_id)
        if obj is None:
            raise ObjectNotFoundError(object_id)
        return obj

    def delete(self, object_id: str) -> None:
        self.require(object_id)
        self.store.delete_object(object_id)

    def all(self) -> list:
        return self.store.objects_of_type(self.type_name)

    def select(self, predicate: Callable[[RegistryObject], bool]) -> list:
        return self.store.select_objects(self.type_name, predicate)

    def find_by_name(self, name: str) -> list:
        """Exact-name lookup (the UI's organization/service search), indexed."""
        return self.store.find_by_name(self.type_name, name)

    def find_views_by_name(self, name: str) -> list:
        """Read-only exact-name lookup — no copies (discovery hot path)."""
        return self.store.find_views_by_name(self.type_name, name)

    def find_by_name_prefix(self, prefix: str) -> list:
        """Prefix search, like the thesis' ``DemoOrg_%`` Web-UI searches."""
        return self.store.find_by_name_prefix(self.type_name, prefix)

    def count(self) -> int:
        return self.store.count(self.type_name)

    def _check_type(self, obj: RegistryObject) -> None:
        if not isinstance(obj, self.RIM_CLASS):
            raise InvalidRequestError(
                f"{type(self).__name__} cannot store a {obj.type_name}"
            )


class BindingResolver(Protocol):
    """Strategy deciding which access URIs a discovery returns, in what order.

    This is the seam the thesis' load-balancing scheme plugs into: the
    default resolver reproduces vanilla freebXML (all bindings, publisher
    order); :class:`repro.core.balancer.ConstraintBindingResolver` reproduces
    the modified registry.
    """

    def resolve(
        self, service: Service, bindings: Sequence[ServiceBinding]
    ) -> list[ServiceBinding]:
        ...

    def fingerprint(self) -> object:
        """Hashable token capturing every resolver input *besides* the store.

        ServiceDAO memoizes resolved access-URI lists while both the store
        version and this token are unchanged.  Resolvers whose output depends
        only on the service and its bindings return a constant; a resolver
        may omit the method entirely to opt out of caching.
        """
        ...


class DefaultBindingResolver:
    """Vanilla behaviour: every binding, in publisher order."""

    def resolve(
        self, service: Service, bindings: Sequence[ServiceBinding]
    ) -> list[ServiceBinding]:
        return list(bindings)

    def fingerprint(self) -> object:
        return None  # publisher order depends on the store alone


class ServiceBindingDAO(GenericDAO):
    RIM_CLASS = ServiceBinding

    def for_service(self, service: Service, *, copy: bool = True) -> list[ServiceBinding]:
        """Bindings of *service* in publisher order (the order of binding_ids).

        ``copy=False`` returns the stored instances (read-only by contract);
        the discovery fast path uses it to skip per-binding deep copies.
        """
        fetch = self.get if copy else self.get_view
        out: list[ServiceBinding] = []
        for binding_id in service.binding_ids:
            binding = fetch(binding_id)
            if binding is not None:
                out.append(binding)
        return out

    def find_by_host(self, host: str) -> list[ServiceBinding]:
        return self.select(lambda b: b.host == host)


class ServiceDAO(GenericDAO):
    """Service accessor with the thesis' modified discovery path.

    :meth:`resolve_bindings` is what the QueryManager calls when a client
    asks for a service's access URIs; the installed resolver implements
    either vanilla or load-balanced behaviour.
    """

    RIM_CLASS = Service

    def __init__(
        self,
        store: DataStore,
        binding_dao: ServiceBindingDAO,
        resolver: BindingResolver | None = None,
    ) -> None:
        super().__init__(store)
        self.binding_dao = binding_dao
        self.resolver: BindingResolver = resolver or DefaultBindingResolver()
        #: the resolver's fingerprint method, looked up once per install —
        #: the per-query getattr was measurable on the discovery hot path
        self._fingerprint = getattr(self.resolver, "fingerprint", None)
        #: service id → (resolver fingerprint, access URIs), maintained
        #: incrementally off the store's changelog: a write drops exactly
        #: the entries it affects instead of re-keying the population
        from repro.persistence.views import ServiceUriView

        self._uri_view = ServiceUriView(store)
        self.uri_cache_hits = 0
        self.uri_cache_misses = 0
        #: optional telemetry tracer; spans the (cache-miss) resolve path only
        self.tracer = None

    def set_resolver(self, resolver: BindingResolver) -> None:
        self.resolver = resolver
        self._fingerprint = getattr(resolver, "fingerprint", None)
        self._uri_view.invalidate_all()

    def resolve_bindings(self, service: Service, *, copy: bool = True) -> list[ServiceBinding]:
        """Bindings for discovery, post-resolver (the registry's answer).

        The resolver only reads, so it always runs over stored views; with
        ``copy=True`` (the default, safe for external callers) the *resolved*
        bindings are copied on the way out — per-query copy work is bounded
        by the answer size, not the partition size.
        """
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            with tracer.span("dao.resolve_bindings", service=service.id) as span:
                raw = self.binding_dao.for_service(service, copy=False)
                resolved = self.resolver.resolve(service, raw)
                span.tags["bindings"] = len(raw)
                span.tags["resolved"] = len(resolved)
        else:
            raw = self.binding_dao.for_service(service, copy=False)
            resolved = self.resolver.resolve(service, raw)
        if copy:
            return [b.copy() for b in resolved]
        return resolved

    def resolve_access_uris(self, service: Service) -> list[str]:
        """Access URIs for discovery — what execute()/the Web UI displays.

        Steady-state repeat queries are answered from a changelog-backed
        materialized view: an entry stays valid until a write actually
        touches that service (or one of its bindings) and while the
        resolver's :meth:`fingerprint` token is unchanged — for the
        constraint resolver that means no NodeState sample landed and the
        clock minute is the same.  Unrelated writes no longer evict
        anything.  A resolver without a ``fingerprint`` method disables
        the cache.
        """
        fingerprint = self._fingerprint
        if fingerprint is None:
            return [
                b.access_uri
                for b in self.resolve_bindings(service, copy=False)
                if b.access_uri
            ]
        view = self._uri_view
        as_of = view.catch_up()
        token = fingerprint()
        cached = view.get(service.id)
        if cached is not None and cached[0] == token:
            self.uri_cache_hits += 1
            return list(cached[1])
        self.uri_cache_misses += 1
        uris = [
            b.access_uri
            for b in self.resolve_bindings(service, copy=False)
            if b.access_uri
        ]
        # a fill that raced a write is stranded by the view (future miss)
        # rather than caching a pre-write answer past its invalidation
        view.put(service.id, token, uris, as_of=as_of)
        return list(uris)

    def uri_cache_stats(self) -> dict[str, int]:
        """Resolution-cache counters (telemetry surface): hits/misses/entries."""
        view = self._uri_view
        return {
            "hits": self.uri_cache_hits,
            "misses": self.uri_cache_misses,
            "entries": len(view),
            "applied_seq": view.applied_seq,
            "invalidations": view.invalidations,
        }


class OrganizationDAO(GenericDAO):
    RIM_CLASS = Organization


class AssociationDAO(GenericDAO):
    RIM_CLASS = Association

    def find_by_source(self, source_id: str) -> list[Association]:
        return self.select(lambda a: a.source_object == source_id)

    def find_by_target(self, target_id: str) -> list[Association]:
        return self.select(lambda a: a.target_object == target_id)

    def find_involving(self, object_id: str) -> list[Association]:
        return self.select(
            lambda a: object_id in (a.source_object, a.target_object)
        )

    def offers_service(self, org_id: str) -> list[Association]:
        return self.select(
            lambda a: a.source_object == org_id
            and a.association_type is AssociationType.OFFERS_SERVICE
        )


class UserDAO(GenericDAO):
    RIM_CLASS = User

    def find_by_alias(self, alias: str) -> User | None:
        matches = self.select(lambda u: u.alias == alias)
        return matches[0] if matches else None


class AuditableEventDAO(GenericDAO):
    RIM_CLASS = AuditableEvent

    def for_object(self, object_id: str) -> list[AuditableEvent]:
        events = self.select(lambda e: e.affected_object == object_id)
        return sorted(events, key=lambda e: (e.timestamp, e.sequence, e.id))


class ClassificationDAO(GenericDAO):
    RIM_CLASS = Classification

    def for_object(self, object_id: str) -> list[Classification]:
        return self.select(lambda c: c.classified_object == object_id)


class ClassificationSchemeDAO(GenericDAO):
    RIM_CLASS = ClassificationScheme


class ClassificationNodeDAO(GenericDAO):
    RIM_CLASS = ClassificationNode

    def children_of(self, parent_id: str) -> list[ClassificationNode]:
        return self.select(lambda n: n.parent == parent_id)


class ExternalIdentifierDAO(GenericDAO):
    RIM_CLASS = ExternalIdentifier

    def for_object(self, object_id: str) -> list[ExternalIdentifier]:
        return self.select(lambda e: e.registry_object == object_id)


class ExternalLinkDAO(GenericDAO):
    RIM_CLASS = ExternalLink


class ExtrinsicObjectDAO(GenericDAO):
    RIM_CLASS = ExtrinsicObject


class RegistryPackageDAO(GenericDAO):
    RIM_CLASS = RegistryPackage


class SpecificationLinkDAO(GenericDAO):
    RIM_CLASS = SpecificationLink


class AdhocQueryDAO(GenericDAO):
    RIM_CLASS = AdhocQuery


class SubscriptionDAO(GenericDAO):
    RIM_CLASS = Subscription


class DAORegistry:
    """Bundle of all DAOs over one datastore (freebXML's persistence manager)."""

    def __init__(self, store: DataStore) -> None:
        self.store = store
        self.service_bindings = ServiceBindingDAO(store)
        self.services = ServiceDAO(store, self.service_bindings)
        self.organizations = OrganizationDAO(store)
        self.associations = AssociationDAO(store)
        self.users = UserDAO(store)
        self.events = AuditableEventDAO(store)
        self.classifications = ClassificationDAO(store)
        self.classification_schemes = ClassificationSchemeDAO(store)
        self.classification_nodes = ClassificationNodeDAO(store)
        self.external_identifiers = ExternalIdentifierDAO(store)
        self.external_links = ExternalLinkDAO(store)
        self.extrinsic_objects = ExtrinsicObjectDAO(store)
        self.packages = RegistryPackageDAO(store)
        self.specification_links = SpecificationLinkDAO(store)
        self.adhoc_queries = AdhocQueryDAO(store)
        self.subscriptions = SubscriptionDAO(store)
        # routing table built once; dao_for is on the LifeCycleManager write path
        self._dao_by_type: dict[str, GenericDAO] = {
            dao.type_name: dao
            for dao in vars(self).values()
            if isinstance(dao, GenericDAO)
        }

    def dao_for(self, obj: RegistryObject) -> GenericDAO:
        """Route an object to its typed DAO (used by the LifeCycleManager)."""
        dao = self._dao_by_type.get(obj.type_name)
        if dao is None:
            raise InvalidRequestError(f"no DAO for object type {obj.type_name!r}")
        return dao
