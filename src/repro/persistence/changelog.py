"""Append-only changelog — the registry's single write spine.

Every committed heap mutation (insert/save/delete) appends one typed
:class:`ChangeRecord` carrying a monotonic sequence number, the affected
object id and type, the post-image (and pre-image, when one exists), the
published index generation, and the idempotency key of the lifecycle
request that produced it.  The log is the source of truth that the
materialized discovery views (:mod:`repro.persistence.views`) key their
incremental invalidation on, and the replication spine a federated
registry would ship to peers.

Ordering contract (enforced by :class:`~repro.persistence.datastore.DataStore`
under its writer lock): the heap mutation happens first, then the index
generation is published, then the record is appended.  A reader that
observes record *N* therefore always sees a heap at least as new as *N* —
views can catch up to a sequence number and fill from the live heap
without ever caching data older than their applied watermark.

Transactions buffer their records and flush on the outermost commit; a
rollback drops the buffer and appends a ``"reset"`` barrier instead, so
views know that entries filled from the transaction's intermediate
(published, then rolled back) generations must be discarded wholesale.
Replay skips barriers: every record that precedes one was itself
committed, so the log replays to exactly the committed state.

Appends happen only under the store's writer lock; readers slice the
backing list without locking (list append is atomic under CPython, and
records are immutable once appended).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterator, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.persistence.datastore import DataStore
    from repro.rim.base import RegistryObject

#: record operations: three heap mutations plus the rollback barrier
OP_INSERT = "insert"
OP_SAVE = "save"
OP_DELETE = "delete"
OP_RESET = "reset"


@dataclass(frozen=True)
class ChangeRecord:
    """One committed heap mutation (or a rollback barrier).

    ``payload`` is the stored post-image — safe to hold by reference, the
    heap never mutates a stored instance in place — and is ``None`` for
    deletes and barriers.  ``previous`` is the pre-image a save replaced
    or a delete removed (``None`` for inserts and barriers); views use it
    to invalidate entries keyed off the *old* object state (e.g. a
    binding re-pointed to a different service).
    """

    seq: int
    op: str
    type_name: str | None
    object_id: str | None
    payload: "RegistryObject | None"
    previous: "RegistryObject | None"
    version: int
    idempotency_key: str | None = None


class ChangeLog:
    """The append-only record list behind one :class:`DataStore`."""

    def __init__(self) -> None:
        self._records: list[ChangeRecord] = []
        self.resets = 0
        #: subscription id → listener called with each appended record
        self._subscribers: dict[int, Callable[[ChangeRecord], None]] = {}
        self._next_subscription = 1

    # -- append (writer-side, under the store's writer lock) -------------------

    def append(
        self,
        op: str,
        *,
        type_name: str | None = None,
        object_id: str | None = None,
        payload: "RegistryObject | None" = None,
        previous: "RegistryObject | None" = None,
        version: int = 0,
        idempotency_key: str | None = None,
    ) -> ChangeRecord:
        record = ChangeRecord(
            seq=len(self._records) + 1,
            op=op,
            type_name=type_name,
            object_id=object_id,
            payload=payload,
            previous=previous,
            version=version,
            idempotency_key=idempotency_key,
        )
        self._records.append(record)
        if op == OP_RESET:
            self.resets += 1
        for listener in list(self._subscribers.values()):
            listener(record)
        return record

    # -- subscriptions (tail notifications) --------------------------------------

    def subscribe(self, listener: Callable[[ChangeRecord], None]) -> int:
        """Call *listener* with every record appended from now on.

        Listeners run under the store's writer lock (the append path), so
        they must be cheap and must never touch another store — a
        replication consumer should only flag that new records exist and
        apply them from its own pump loop (see
        :class:`repro.registry.federation.ReplicationLink`).  Returns a
        subscription id for :meth:`unsubscribe`.
        """
        subscription = self._next_subscription
        self._next_subscription += 1
        self._subscribers[subscription] = listener
        return subscription

    def unsubscribe(self, subscription: int) -> bool:
        return self._subscribers.pop(subscription, None) is not None

    def subscriber_count(self) -> int:
        return len(self._subscribers)

    # -- reads (lock-free) -----------------------------------------------------

    @property
    def last_seq(self) -> int:
        """Sequence number of the newest record (0 when empty)."""
        return len(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def records_since(self, seq: int) -> Sequence[ChangeRecord]:
        """Every record with a sequence number greater than *seq*, in order."""
        return self._records[seq:]

    def tail(self, count: int) -> Sequence[ChangeRecord]:
        return self._records[-count:] if count > 0 else []

    def iter_batches(
        self, since: int = 0, *, batch_size: int = 100
    ) -> Iterator[Sequence[ChangeRecord]]:
        """Yield the records after *since* in contiguous batches.

        Replication consumers pull the tail in bounded chunks; any batch
        size partitions the same record sequence, so replaying the batches
        in order is equivalent to one bulk :meth:`records_since` replay.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        position = since
        while position < len(self._records):
            batch = self._records[position : position + batch_size]
            position += len(batch)
            yield batch

    def stats(self) -> dict[str, int]:
        return {
            "records": len(self._records),
            "resets": self.resets,
            "subscribers": len(self._subscribers),
        }

    # -- replay ----------------------------------------------------------------

    def replay_into(self, store: "DataStore") -> int:
        """Rebuild *store* by replaying every committed record, in order.

        Barriers are skipped — records surrounding one were all committed,
        so the replayed heap lands on exactly the state the source store
        holds.  Returns the number of records applied.  The target must be
        empty of conflicting ids (a fresh store, typically).
        """
        applied = 0
        for record in list(self._records):
            if record.op == OP_RESET:
                continue
            if record.op == OP_INSERT:
                store.insert_object(record.payload)
            elif record.op == OP_SAVE:
                store.save_object(record.payload)
            elif record.op == OP_DELETE:
                store.delete_object(record.object_id)
            else:  # pragma: no cover - appends validate ops
                raise ValueError(f"unknown changelog op: {record.op!r}")
            applied += 1
        return applied
