"""The registry's persistent store: object heap + relational tables + transactions.

freebXML persists ebRIM objects through ``SQLPersistenceManagerImpl`` over
JDBC; here a :class:`DataStore` provides the same contract in memory:

* an **object heap** keyed by registry-object id, partitioned by type so the
  SQL-92 engine can treat each ebRIM class as a virtual table;
* named relational :class:`~repro.persistence.table.Table` instances for the
  genuinely tabular state (``NodeState``, repository items);
* per-request **transactions** with commit/rollback, giving the ACID-at-
  request-granularity behaviour the registry needs.

Discovery fast path: the heap keeps two incrementally-maintained secondary
indexes per type — a sorted id list (so ``objects_of_type`` never re-sorts)
and a name index with a sorted key list (so exact-name and prefix lookups
stop scanning the partition).  Read paths that can tolerate aliasing opt
into **views** (``get_view`` / ``iter_views_of_type`` / ``find_views_by_name``)
which return the stored instances without the per-object ``copy()``; views
are read-only by contract — all writes still go through
``insert_object``/``save_object``/``delete_object`` copy-on-write.

Write listeners (``add_write_listener``) observe every heap mutation —
including transaction rollback — so caches layered above the store
(constraint cache, monitor target list) invalidate without polling.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from contextlib import contextmanager
from typing import Any, Callable, Iterable, Iterator

from repro.persistence.table import Row, Table
from repro.rim.base import RegistryObject
from repro.util.errors import (
    InvalidRequestError,
    ObjectExistsError,
    ObjectNotFoundError,
)

#: ``listener(type_name, object_id)`` called after each heap write;
#: ``(None, None)`` means "anything may have changed" (transaction rollback).
WriteListener = Callable[[str | None, str | None], None]


class DataStore:
    """In-memory persistence for one registry instance."""

    def __init__(self) -> None:
        #: id → stored object (the store owns these; accessors get copies)
        self._objects: dict[str, RegistryObject] = {}
        #: type name → set of ids (virtual-table partitions)
        self._by_type: dict[str, set[str]] = {}
        #: type name → ids in sorted order (maintained incrementally)
        self._sorted_ids: dict[str, list[str]] = {}
        #: type name → name value → set of ids
        self._by_name: dict[str, dict[str, set[str]]] = {}
        #: type name → distinct name values in sorted order (prefix scans)
        self._sorted_names: dict[str, list[str]] = {}
        self._tables: dict[str, Table] = {}
        #: monotonic heap-write counter (bumped by every write and rollback);
        #: caches layered on the heap validate against it cheaply instead of
        #: subscribing a listener
        self.version = 0
        self._listeners: list[WriteListener] = []
        self._txn_depth = 0
        self._txn_object_snapshot: dict[str, RegistryObject] | None = None
        self._txn_table_snapshots: dict[str, dict[Any, Row]] | None = None

    # -- relational tables ---------------------------------------------------

    def create_table(
        self,
        name: str,
        columns: list[str],
        *,
        primary_key: str,
        indexes: list[str] | None = None,
    ) -> Table:
        if name in self._tables:
            raise InvalidRequestError(f"table already exists: {name!r}")
        table = Table(name, columns, primary_key=primary_key, indexes=indexes or ())
        self._tables[name] = table
        return table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise ObjectNotFoundError(name, f"no such table: {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    # -- write listeners -----------------------------------------------------

    def add_write_listener(self, listener: WriteListener) -> None:
        """Subscribe to heap writes (insert/save/delete and rollback)."""
        self._listeners.append(listener)

    def remove_write_listener(self, listener: WriteListener) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)

    def _notify(self, type_name: str | None, object_id: str | None) -> None:
        self.version += 1
        for listener in self._listeners:
            listener(type_name, object_id)

    # -- secondary index maintenance -----------------------------------------

    def _index_add(self, obj: RegistryObject) -> None:
        type_name = obj.type_name
        self._by_type.setdefault(type_name, set()).add(obj.id)
        insort(self._sorted_ids.setdefault(type_name, []), obj.id)
        self._name_index_add(type_name, obj.name.value, obj.id)

    def _index_remove(self, obj: RegistryObject) -> None:
        type_name = obj.type_name
        self._by_type.get(type_name, set()).discard(obj.id)
        ids = self._sorted_ids.get(type_name)
        if ids is not None:
            pos = bisect_left(ids, obj.id)
            if pos < len(ids) and ids[pos] == obj.id:
                ids.pop(pos)
        self._name_index_remove(type_name, obj.name.value, obj.id)

    def _name_index_add(self, type_name: str, name: str, object_id: str) -> None:
        names = self._by_name.setdefault(type_name, {})
        bucket = names.get(name)
        if bucket is None:
            names[name] = {object_id}
            insort(self._sorted_names.setdefault(type_name, []), name)
        else:
            bucket.add(object_id)

    def _name_index_remove(self, type_name: str, name: str, object_id: str) -> None:
        names = self._by_name.get(type_name)
        if names is None:
            return
        bucket = names.get(name)
        if bucket is None:
            return
        bucket.discard(object_id)
        if not bucket:
            del names[name]
            keys = self._sorted_names.get(type_name)
            if keys is not None:
                pos = bisect_left(keys, name)
                if pos < len(keys) and keys[pos] == name:
                    keys.pop(pos)

    def _rebuild_indexes(self) -> None:
        self._by_type = {}
        self._sorted_ids = {}
        self._by_name = {}
        self._sorted_names = {}
        for obj in self._objects.values():
            self._index_add(obj)

    # -- object heap ---------------------------------------------------------

    def insert_object(self, obj: RegistryObject) -> None:
        if obj.id in self._objects:
            raise ObjectExistsError(obj.id)
        stored = obj.copy()
        self._objects[obj.id] = stored
        self._index_add(stored)
        self._notify(stored.type_name, stored.id)

    def save_object(self, obj: RegistryObject) -> None:
        """Insert-or-replace; type changes for an existing id are rejected."""
        existing = self._objects.get(obj.id)
        if existing is not None and type(existing) is not type(obj):
            raise InvalidRequestError(
                f"object {obj.id} cannot change type "
                f"{existing.type_name} → {obj.type_name}"
            )
        stored = obj.copy()
        if existing is not None:
            # id and type are unchanged; only the name index may move.
            old_name = existing.name.value
            new_name = stored.name.value
            if old_name != new_name:
                self._name_index_remove(stored.type_name, old_name, stored.id)
                self._name_index_add(stored.type_name, new_name, stored.id)
            self._objects[obj.id] = stored
        else:
            self._objects[obj.id] = stored
            self._index_add(stored)
        self._notify(stored.type_name, stored.id)

    def get_object(self, object_id: str) -> RegistryObject | None:
        obj = self._objects.get(object_id)
        return obj.copy() if obj is not None else None

    def get_view(self, object_id: str) -> RegistryObject | None:
        """The stored instance itself — read-only by contract, no copy.

        Callers must not mutate the returned object; writes go through
        :meth:`save_object`.  This is the discovery hot path's accessor.
        """
        return self._objects.get(object_id)

    def require_object(self, object_id: str) -> RegistryObject:
        obj = self.get_object(object_id)
        if obj is None:
            raise ObjectNotFoundError(object_id)
        return obj

    def delete_object(self, object_id: str) -> None:
        obj = self._objects.pop(object_id, None)
        if obj is None:
            raise ObjectNotFoundError(object_id)
        self._index_remove(obj)
        self._notify(obj.type_name, object_id)

    def contains(self, object_id: str) -> bool:
        return object_id in self._objects

    def objects_of_type(self, type_name: str) -> list[RegistryObject]:
        """All stored objects of one ebRIM class (copies), in id order."""
        return [self._objects[i].copy() for i in self._sorted_ids.get(type_name, ())]

    def iter_views_of_type(self, type_name: str) -> Iterator[RegistryObject]:
        """Stored objects of one class in id order — read-only, no copies."""
        objects = self._objects
        return (objects[i] for i in self._sorted_ids.get(type_name, ()))

    def select_objects(
        self,
        type_name: str,
        predicate: Callable[[RegistryObject], bool] | None = None,
    ) -> list[RegistryObject]:
        if predicate is None:
            return self.objects_of_type(type_name)
        # evaluate the predicate on the stored instances, copy only matches
        return [o.copy() for o in self.iter_views_of_type(type_name) if predicate(o)]

    # -- name lookups (index-backed) -----------------------------------------

    def find_ids_by_name(self, type_name: str, name: str) -> list[str]:
        """Ids of objects of *type_name* whose name equals *name* (sorted)."""
        bucket = self._by_name.get(type_name, {}).get(name)
        return sorted(bucket) if bucket else []

    def find_by_name(self, type_name: str, name: str) -> list[RegistryObject]:
        return [self._objects[i].copy() for i in self.find_ids_by_name(type_name, name)]

    def find_views_by_name(self, type_name: str, name: str) -> list[RegistryObject]:
        """Read-only variant of :meth:`find_by_name` (no copies)."""
        return [self._objects[i] for i in self.find_ids_by_name(type_name, name)]

    def find_ids_by_names(self, type_name: str, names: Iterable[str]) -> list[str]:
        """Ids of objects of *type_name* whose name is any of *names* (sorted).

        The query planner's ``name IN (...)`` probe: one bucket lookup per
        name instead of a partition scan.
        """
        buckets = self._by_name.get(type_name)
        if not buckets:
            return []
        out: set[str] = set()
        for name in names:
            bucket = buckets.get(name)
            if bucket:
                out |= bucket
        return sorted(out)

    def filter_ids_of_type(
        self, type_name: str, candidate_ids: Iterable[str]
    ) -> list[str]:
        """The subset of *candidate_ids* stored under *type_name* (sorted).

        The query planner's id-equality / ``id IN (...)`` probe: set
        intersection against the type partition, never a scan.
        """
        bucket = self._by_type.get(type_name)
        if not bucket:
            return []
        return sorted(bucket.intersection(candidate_ids))

    def find_ids_by_name_prefix(self, type_name: str, prefix: str) -> list[str]:
        """Ids of objects whose name starts with *prefix*, via a range scan."""
        keys = self._sorted_names.get(type_name, [])
        names = self._by_name.get(type_name, {})
        out: list[str] = []
        for pos in range(bisect_left(keys, prefix), len(keys)):
            key = keys[pos]
            if not key.startswith(prefix):
                break
            out.extend(names[key])
        return sorted(out)

    def find_by_name_prefix(self, type_name: str, prefix: str) -> list[RegistryObject]:
        return [
            self._objects[i].copy()
            for i in self.find_ids_by_name_prefix(type_name, prefix)
        ]

    def all_ids(self) -> list[str]:
        return sorted(self._objects)

    def count(self, type_name: str | None = None) -> int:
        if type_name is None:
            return len(self._objects)
        return len(self._by_type.get(type_name, ()))

    def type_names(self) -> list[str]:
        return sorted(name for name, ids in self._by_type.items() if ids)

    # -- transactions ----------------------------------------------------------

    @contextmanager
    def transaction(self) -> Iterator["DataStore"]:
        """Commit on success, roll back object heap *and* tables on error.

        Nested transactions join the outermost one (savepoints are not
        needed by the registry's request granularity).
        """
        if self._txn_depth == 0:
            self._txn_object_snapshot = {
                oid: obj.copy() for oid, obj in self._objects.items()
            }
            self._txn_table_snapshots = {
                name: table.snapshot() for name, table in self._tables.items()
            }
        self._txn_depth += 1
        try:
            yield self
        except BaseException:
            self._txn_depth -= 1
            if self._txn_depth == 0:
                self._rollback()
            raise
        else:
            self._txn_depth -= 1
            if self._txn_depth == 0:
                self._txn_object_snapshot = None
                self._txn_table_snapshots = None

    def _rollback(self) -> None:
        assert self._txn_object_snapshot is not None
        assert self._txn_table_snapshots is not None
        self._objects = self._txn_object_snapshot
        self._rebuild_indexes()
        for name, snapshot in self._txn_table_snapshots.items():
            if name in self._tables:
                self._tables[name].restore(snapshot)
        self._txn_object_snapshot = None
        self._txn_table_snapshots = None
        self._notify(None, None)
