"""The registry's persistent store: object heap + relational tables + transactions.

freebXML persists ebRIM objects through ``SQLPersistenceManagerImpl`` over
JDBC; here a :class:`DataStore` provides the same contract in memory:

* an **object heap** keyed by registry-object id, partitioned by type so the
  SQL-92 engine can treat each ebRIM class as a virtual table;
* named relational :class:`~repro.persistence.table.Table` instances for the
  genuinely tabular state (``NodeState``, repository items);
* per-request **transactions** with commit/rollback, giving the ACID-at-
  request-granularity behaviour the registry needs.

Discovery fast path: the heap keeps two incrementally-maintained secondary
indexes per type — a sorted id list (so ``objects_of_type`` never re-sorts)
and a name index with a sorted key list (so exact-name and prefix lookups
stop scanning the partition).  Read paths that can tolerate aliasing opt
into **views** (``get_view`` / ``iter_views_of_type`` / ``find_views_by_name``)
which return the stored instances without the per-object ``copy()``; views
are read-only by contract — all writes still go through
``insert_object``/``save_object``/``delete_object`` copy-on-write.

Concurrency model (the serving core's substrate):

* **single writer lock** — every mutator runs under :attr:`_lock`; writers
  never block readers and readers never take the lock;
* **atomically published index generations** — all iterable index state
  lives in one immutable :class:`HeapIndexes` value.  Writers build new
  (partition-level copy-on-write) containers and publish them with a single
  attribute store, so a reader that captured ``self._indexes`` sees one
  self-consistent generation end to end: no list resized mid-iteration, no
  "set changed size", no mixed-generation id lists;
* **stored-object immutability** — the heap never mutates a stored instance
  in place (``save_object`` stores a fresh copy), so any object a reader
  holds is internally consistent forever;
* **pinned snapshots** — :meth:`pin_snapshot` returns a
  :class:`HeapSnapshot` whose index generation is frozen and whose replaced/
  deleted objects are preserved by writers into a per-snapshot pre-image
  overlay (copy-on-write *to the past*).  Iterating a pinned snapshot is
  repeatable and torn-free while it stays pinned, at zero cost to readers
  and O(active pins) cost to the rare write.

Unpinned reads are lock-free and see the latest committed state; they are
individually consistent (each call runs over one published generation) but
two successive calls may span a write.  Multi-step read transactions pin.

Write listeners (``add_write_listener``) observe every heap mutation —
including transaction rollback — so caches layered above the store
(constraint cache, monitor target list) invalidate without polling; they
run under the writer lock, making invalidation atomic with publication.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator

from repro.persistence.changelog import (
    OP_DELETE,
    OP_INSERT,
    OP_RESET,
    OP_SAVE,
    ChangeLog,
)
from repro.persistence.table import Row, Table
from repro.rim.base import RegistryObject
from repro.util.errors import (
    InvalidRequestError,
    ObjectExistsError,
    ObjectNotFoundError,
)

#: ``listener(type_name, object_id)`` called after each heap write;
#: ``(None, None)`` means "anything may have changed" (transaction rollback).
WriteListener = Callable[[str | None, str | None], None]

_EMPTY_IDS: frozenset[str] = frozenset()


@dataclass(frozen=True)
class HeapIndexes:
    """One atomically-published generation of the heap's index state.

    Every container reachable from an instance is immutable (or replaced,
    never mutated, by writers), so readers capture ``store._indexes`` once
    and iterate without locks or torn state.
    """

    version: int
    #: type name → ids of that type (membership probes)
    by_type: dict[str, frozenset[str]]
    #: type name → ids in sorted order (ordered partition scans)
    sorted_ids: dict[str, tuple[str, ...]]
    #: type name → name value → ids (exact-name lookups)
    by_name: dict[str, dict[str, frozenset[str]]]
    #: type name → distinct name values in sorted order (prefix range scans)
    sorted_names: dict[str, tuple[str, ...]]


def _tuple_insert(values: tuple[str, ...], value: str) -> tuple[str, ...]:
    pos = bisect_left(values, value)
    return values[:pos] + (value,) + values[pos:]


def _tuple_remove(values: tuple[str, ...], value: str) -> tuple[str, ...]:
    pos = bisect_left(values, value)
    if pos < len(values) and values[pos] == value:
        return values[:pos] + values[pos + 1 :]
    return values


class HeapSnapshot:
    """A pinned, immutable point-in-time view of the object heap.

    While pinned, writers preserve the pre-image of every object they
    replace or delete into this snapshot's overlay, so index-driven reads
    (``objects_of_type``, ``find_views_by_name``, …) always resolve exactly
    the objects of the pinned generation — repeatably, with no torn state.

    One documented relaxation: a *point* lookup (:meth:`get_view`) of an id
    that did not exist at pin time may observe an object inserted later
    (the flat heap map is shared, not copied).  Index-driven iteration never
    does — post-pin inserts are absent from the pinned index generation.

    Use as a context manager (or call :meth:`release`); reads after release
    lose the pre-image guarantee.
    """

    __slots__ = ("_store", "_indexes", "_objects", "_overlay", "released")

    def __init__(self, store: "DataStore") -> None:
        self._store = store
        self._indexes: HeapIndexes = store._indexes
        self._objects = store._objects
        #: object id → pre-image, filled by writers while this pin is live
        self._overlay: dict[str, RegistryObject] = {}
        self.released = False

    # -- lifecycle -----------------------------------------------------------

    def release(self) -> None:
        """Unpin: writers stop preserving pre-images for this snapshot."""
        if not self.released:
            self.released = True
            self._store._unpin(self)

    def __enter__(self) -> "HeapSnapshot":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    # -- reads ---------------------------------------------------------------

    @property
    def version(self) -> int:
        return self._indexes.version

    def get_view(self, object_id: str) -> RegistryObject | None:
        """The object as of the pinned generation (read-only, no copy)."""
        obj = self._overlay.get(object_id)
        if obj is None:
            obj = self._objects.get(object_id)
        return obj

    def contains(self, object_id: str) -> bool:
        """Membership *as of the pinned generation* (index-driven)."""
        obj = self.get_view(object_id)
        if obj is None:
            return False
        return object_id in self._indexes.by_type.get(obj.type_name, _EMPTY_IDS)

    def type_names(self) -> list[str]:
        return sorted(
            name for name, ids in self._indexes.by_type.items() if ids
        )

    def ids_of_type(self, type_name: str) -> tuple[str, ...]:
        return self._indexes.sorted_ids.get(type_name, ())

    def iter_views_of_type(self, type_name: str) -> Iterator[RegistryObject]:
        """Pinned-generation objects of one class in id order (no copies)."""
        for object_id in self._indexes.sorted_ids.get(type_name, ()):
            obj = self.get_view(object_id)
            if obj is not None:
                yield obj

    def objects_of_type(self, type_name: str) -> list[RegistryObject]:
        return [o.copy() for o in self.iter_views_of_type(type_name)]

    def find_ids_by_name(self, type_name: str, name: str) -> list[str]:
        bucket = self._indexes.by_name.get(type_name, {}).get(name)
        return sorted(bucket) if bucket else []

    def find_views_by_name(self, type_name: str, name: str) -> list[RegistryObject]:
        out = []
        for object_id in self.find_ids_by_name(type_name, name):
            obj = self.get_view(object_id)
            if obj is not None:
                out.append(obj)
        return out

    def count(self, type_name: str | None = None) -> int:
        if type_name is None:
            return sum(len(ids) for ids in self._indexes.by_type.values())
        return len(self._indexes.by_type.get(type_name, ()))


class _BatchState:
    """Writer-lock-private accumulator for one write-behind batch.

    Holds the batch's live index builders (ops accumulate into them; one
    publish at batch exit) and the pending change records, coalesced by
    object id so a burst that touches the same object N times flushes one
    record: the post-image of the last write, the pre-image of the first.
    """

    __slots__ = ("builders", "idempotency_key", "depth", "ops", "pending")

    def __init__(self, builders: tuple, idempotency_key: str | None) -> None:
        self.builders = builders
        self.idempotency_key = idempotency_key
        self.depth = 1
        self.ops = 0
        #: object id → (op, type_name, payload, previous), insertion-ordered
        self.pending: dict[str, tuple] = {}

    def record(self, op, type_name, object_id, payload, previous) -> None:
        self.ops += 1
        prev = self.pending.get(object_id)
        if prev is None:
            self.pending[object_id] = (op, type_name, payload, previous)
            return
        prev_op, _, _, first_previous = prev
        if prev_op == OP_INSERT:
            if op == OP_DELETE:
                # inserted and deleted in one batch: never visible outside it
                del self.pending[object_id]
            else:  # insert + save keeps insert, with the newest payload
                self.pending[object_id] = (OP_INSERT, type_name, payload, None)
        elif prev_op == OP_SAVE:
            # save+save → save; save+delete → delete (first pre-image kept)
            self.pending[object_id] = (op, type_name, payload, first_previous)
        else:  # delete then re-insert: net effect is a replace
            self.pending[object_id] = (OP_SAVE, type_name, payload, first_previous)


class DataStore:
    """In-memory persistence for one registry instance."""

    def __init__(self) -> None:
        #: id → stored object.  Mutated only by writers (single-key atomic
        #: operations); stored instances are never modified in place, and
        #: pre-images of replaced/deleted entries go to pinned snapshots.
        self._objects: dict[str, RegistryObject] = {}
        #: the atomically-published immutable index generation
        self._indexes = HeapIndexes(
            version=0, by_type={}, sorted_ids={}, by_name={}, sorted_names={}
        )
        self._tables: dict[str, Table] = {}
        self._listeners: list[WriteListener] = []
        #: the single writer lock (re-entrant: transactions nest mutators)
        self._lock = threading.RLock()
        self._pins: list[HeapSnapshot] = []
        self._txn_depth = 0
        self._txn_table_snapshots: dict[str, dict[Any, Row]] | None = None
        #: the write spine: every committed heap mutation appends a record
        self.changelog = ChangeLog()
        #: change records buffered by an open transaction (flushed on the
        #: outermost commit, dropped — and replaced by a barrier — on rollback)
        self._txn_changes: list[tuple] = []
        #: the active write-behind batch, if any (see :meth:`batch`)
        self._batch: _BatchState | None = None
        # concurrency counters (the serving core's telemetry surface)
        self.writes = 0
        self.batched_writes = 0
        self.coalesced_writes = 0
        self.write_lock_contended = 0
        self.snapshots_pinned = 0
        self.preimages_preserved = 0
        #: monotonic heap-write counter, a plain-attribute mirror of
        #: ``_indexes.version`` (kept in sync by ``_publish`` under the
        #: writer lock) — caches validate against it on every discovery
        #: query, so it must cost one attribute read, not a property call
        self.version = 0

    # -- relational tables ---------------------------------------------------

    def create_table(
        self,
        name: str,
        columns: list[str],
        *,
        primary_key: str,
        indexes: list[str] | None = None,
    ) -> Table:
        with self._write():
            if name in self._tables:
                raise InvalidRequestError(f"table already exists: {name!r}")
            table = Table(name, columns, primary_key=primary_key, indexes=indexes or ())
            self._tables[name] = table
            return table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise ObjectNotFoundError(name, f"no such table: {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    # -- write lock ------------------------------------------------------------

    @contextmanager
    def _write(self) -> Iterator[None]:
        """Acquire the writer lock, counting contended acquisitions."""
        if not self._lock.acquire(blocking=False):
            self.write_lock_contended += 1
            self._lock.acquire()
        try:
            yield
        finally:
            self._lock.release()

    # -- write listeners -----------------------------------------------------

    def add_write_listener(self, listener: WriteListener) -> None:
        """Subscribe to heap writes (insert/save/delete and rollback)."""
        self._listeners.append(listener)

    def remove_write_listener(self, listener: WriteListener) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)

    def _notify(self, type_name: str | None, object_id: str | None) -> None:
        self.writes += 1
        for listener in self._listeners:
            listener(type_name, object_id)

    # -- snapshot pinning ------------------------------------------------------

    def pin_snapshot(self) -> HeapSnapshot:
        """Pin the current generation for torn-free multi-step reads.

        Pinning takes the writer lock briefly (registration must not race a
        concurrent publication); all reads through the returned snapshot are
        then lock-free.  Release promptly — writers pay O(active pins) per
        replaced/deleted object.
        """
        with self._write():
            snapshot = HeapSnapshot(self)
            self._pins.append(snapshot)
            self.snapshots_pinned += 1
            return snapshot

    def _unpin(self, snapshot: HeapSnapshot) -> None:
        with self._write():
            if snapshot in self._pins:
                self._pins.remove(snapshot)

    def _preserve(self, object_id: str, old: RegistryObject) -> None:
        """Record a pre-image into every live pinned snapshot (writer-side)."""
        for snapshot in self._pins:
            if object_id not in snapshot._overlay:
                snapshot._overlay[object_id] = old
                self.preimages_preserved += 1

    def concurrency_stats(self) -> dict[str, int]:
        """Writer-lock / snapshot counters (the telemetry surface)."""
        return {
            "version": self.version,
            "writes": self.writes,
            "write_lock_contended": self.write_lock_contended,
            "snapshots_pinned": self.snapshots_pinned,
            "active_pins": len(self._pins),
            "preimages_preserved": self.preimages_preserved,
        }

    # -- index publication (writer-side, under the lock) -----------------------

    def _publish(
        self,
        by_type: dict[str, frozenset[str]],
        sorted_ids: dict[str, tuple[str, ...]],
        by_name: dict[str, dict[str, frozenset[str]]],
        sorted_names: dict[str, tuple[str, ...]],
    ) -> None:
        self._indexes = HeapIndexes(
            version=self._indexes.version + 1,
            by_type=by_type,
            sorted_ids=sorted_ids,
            by_name=by_name,
            sorted_names=sorted_names,
        )
        self.version = self._indexes.version

    def _builders(self):
        """Shallow outer-dict copies of the current generation's indexes."""
        idx = self._indexes
        return (
            dict(idx.by_type),
            dict(idx.sorted_ids),
            dict(idx.by_name),
            dict(idx.sorted_names),
        )

    def _active_builders(self):
        """The batch's accumulating builders, or fresh per-op copies."""
        state = self._batch
        if state is not None:
            return state.builders
        return self._builders()

    # -- write spine (changelog + write-behind batching) -----------------------

    def _commit_write(self, op, type_name, object_id, payload, previous, builders):
        """Finish one mutator: publish + log + notify, or defer to the batch."""
        state = self._batch
        if state is not None:
            state.record(op, type_name, object_id, payload, previous)
            return
        self._publish(*builders)
        self._log_change(op, type_name, object_id, payload, previous, None)
        self._notify(type_name, object_id)

    def _log_change(self, op, type_name, object_id, payload, previous, key) -> None:
        """Append one record — via the transaction buffer when one is open."""
        if self._txn_depth > 0:
            self._txn_changes.append(
                (op, type_name, object_id, payload, previous, key)
            )
            return
        self.changelog.append(
            op,
            type_name=type_name,
            object_id=object_id,
            payload=payload,
            previous=previous,
            version=self.version,
            idempotency_key=key,
        )

    def _flush_txn_changes(self) -> None:
        """Outermost commit: move buffered records onto the changelog."""
        version = self.version
        for op, type_name, object_id, payload, previous, key in self._txn_changes:
            self.changelog.append(
                op,
                type_name=type_name,
                object_id=object_id,
                payload=payload,
                previous=previous,
                version=version,
                idempotency_key=key,
            )
        self._txn_changes.clear()

    @contextmanager
    def batch(self, *, idempotency_key: str | None = None) -> Iterator["DataStore"]:
        """Write-behind a burst of mutations: one publish, coalesced records.

        Inside the batch every mutator updates the heap map immediately
        (point reads stay exact) but accumulates its index changes into one
        builder set and its change record into a per-object coalescing
        buffer.  Batch exit publishes a *single* new index generation — one
        version bump for N ops, so version-keyed caches re-key once — then
        flushes the coalesced records and notifies listeners per record.

        Index-driven readers during the batch see the pre-batch generation
        over the live heap: post-batch inserts are invisible to them and
        deleted ids resolve to nothing (the usual skip), exactly the
        anomaly-free subset MVCC readers already tolerate between
        generations.  The writer lock is held for the whole batch; nested
        batches join the outermost one.  ``idempotency_key`` stamps every
        record the batch flushes.
        """
        with self._write():
            state = self._batch
            if state is not None:
                state.depth += 1
                try:
                    yield self
                finally:
                    state.depth -= 1
                return
            state = _BatchState(self._builders(), idempotency_key)
            self._batch = state
            try:
                yield self
            finally:
                # flush even on error: the heap map already mutated, so the
                # indexes and records must match it.  An enclosing failed
                # transaction rolls the whole thing back afterwards.
                self._batch = None
                self._flush_batch(state)

    def _flush_batch(self, state: _BatchState) -> None:
        if state.ops == 0:
            return
        self._publish(*state.builders)
        self.batched_writes += state.ops
        self.coalesced_writes += state.ops - len(state.pending)
        key = state.idempotency_key
        for object_id, (op, type_name, payload, previous) in state.pending.items():
            self._log_change(op, type_name, object_id, payload, previous, key)
        for object_id, (op, type_name, _payload, _previous) in state.pending.items():
            self._notify(type_name, object_id)

    def write_stats(self) -> dict[str, Any]:
        """The write-spine telemetry surface: changelog + batching counters."""
        log = self.changelog
        batched = self.batched_writes
        coalesced = self.coalesced_writes
        return {
            "changelog_records": len(log),
            "last_seq": log.last_seq,
            "resets": log.resets,
            "version": self.version,
            "writes": self.writes,
            "batched_writes": batched,
            "coalesced_writes": coalesced,
            "coalesce_ratio": (coalesced / batched) if batched else 0.0,
        }

    @staticmethod
    def _builder_add(
        by_type, sorted_ids, by_name, sorted_names, type_name: str, name: str, oid: str
    ) -> None:
        by_type[type_name] = by_type.get(type_name, _EMPTY_IDS) | {oid}
        sorted_ids[type_name] = _tuple_insert(sorted_ids.get(type_name, ()), oid)
        buckets = dict(by_name.get(type_name, {}))
        bucket = buckets.get(name)
        if bucket is None:
            buckets[name] = frozenset((oid,))
            sorted_names[type_name] = _tuple_insert(
                sorted_names.get(type_name, ()), name
            )
        else:
            buckets[name] = bucket | {oid}
        by_name[type_name] = buckets

    @staticmethod
    def _builder_remove(
        by_type, sorted_ids, by_name, sorted_names, type_name: str, name: str, oid: str
    ) -> None:
        by_type[type_name] = by_type.get(type_name, _EMPTY_IDS) - {oid}
        sorted_ids[type_name] = _tuple_remove(sorted_ids.get(type_name, ()), oid)
        buckets = dict(by_name.get(type_name, {}))
        bucket = buckets.get(name)
        if bucket is not None:
            bucket = bucket - {oid}
            if bucket:
                buckets[name] = bucket
            else:
                del buckets[name]
                sorted_names[type_name] = _tuple_remove(
                    sorted_names.get(type_name, ()), name
                )
        by_name[type_name] = buckets

    def _rebuilt_indexes(self) -> None:
        """Recompute and publish every index from the live heap (rollback)."""
        by_type: dict[str, frozenset[str]] = {}
        sorted_ids: dict[str, tuple[str, ...]] = {}
        by_name: dict[str, dict[str, frozenset[str]]] = {}
        sorted_names: dict[str, tuple[str, ...]] = {}
        grouped: dict[str, list[RegistryObject]] = {}
        for obj in self._objects.values():
            grouped.setdefault(obj.type_name, []).append(obj)
        for type_name, objs in grouped.items():
            objs.sort(key=lambda o: o.id)
            by_type[type_name] = frozenset(o.id for o in objs)
            sorted_ids[type_name] = tuple(o.id for o in objs)
            names: dict[str, set[str]] = {}
            for obj in objs:
                names.setdefault(obj.name.value, set()).add(obj.id)
            by_name[type_name] = {n: frozenset(ids) for n, ids in names.items()}
            sorted_names[type_name] = tuple(sorted(names))
        self._publish(by_type, sorted_ids, by_name, sorted_names)

    # -- object heap ---------------------------------------------------------

    def insert_object(self, obj: RegistryObject) -> None:
        with self._write():
            if obj.id in self._objects:
                raise ObjectExistsError(obj.id)
            stored = obj.copy()
            builders = self._active_builders()
            self._builder_add(
                *builders, stored.type_name, stored.name.value, stored.id
            )
            self._objects[obj.id] = stored
            self._commit_write(
                OP_INSERT, stored.type_name, stored.id, stored, None, builders
            )

    def save_object(self, obj: RegistryObject) -> None:
        """Insert-or-replace; type changes for an existing id are rejected."""
        with self._write():
            existing = self._objects.get(obj.id)
            if existing is not None and type(existing) is not type(obj):
                raise InvalidRequestError(
                    f"object {obj.id} cannot change type "
                    f"{existing.type_name} → {obj.type_name}"
                )
            stored = obj.copy()
            builders = self._active_builders()
            if existing is not None:
                # id and type are unchanged; only the name index may move.
                old_name = existing.name.value
                new_name = stored.name.value
                if old_name != new_name:
                    self._builder_remove(
                        *builders, stored.type_name, old_name, stored.id
                    )
                    self._builder_add(
                        *builders, stored.type_name, new_name, stored.id
                    )
                self._preserve(obj.id, existing)
            else:
                self._builder_add(
                    *builders, stored.type_name, stored.name.value, stored.id
                )
            self._objects[obj.id] = stored
            op = OP_SAVE if existing is not None else OP_INSERT
            self._commit_write(
                op, stored.type_name, stored.id, stored, existing, builders
            )

    def get_object(self, object_id: str) -> RegistryObject | None:
        obj = self._objects.get(object_id)
        return obj.copy() if obj is not None else None

    def get_view(self, object_id: str) -> RegistryObject | None:
        """The stored instance itself — read-only by contract, no copy.

        Callers must not mutate the returned object; writes go through
        :meth:`save_object`.  This is the discovery hot path's accessor.
        """
        return self._objects.get(object_id)

    def require_object(self, object_id: str) -> RegistryObject:
        obj = self.get_object(object_id)
        if obj is None:
            raise ObjectNotFoundError(object_id)
        return obj

    def delete_object(self, object_id: str) -> None:
        with self._write():
            obj = self._objects.get(object_id)
            if obj is None:
                raise ObjectNotFoundError(object_id)
            builders = self._active_builders()
            self._builder_remove(
                *builders, obj.type_name, obj.name.value, obj.id
            )
            self._preserve(object_id, obj)
            del self._objects[object_id]
            self._commit_write(
                OP_DELETE, obj.type_name, object_id, None, obj, builders
            )

    def contains(self, object_id: str) -> bool:
        return object_id in self._objects

    def objects_of_type(self, type_name: str) -> list[RegistryObject]:
        """All stored objects of one ebRIM class (copies), in id order."""
        objects = self._objects
        out = []
        for object_id in self._indexes.sorted_ids.get(type_name, ()):
            obj = objects.get(object_id)
            if obj is not None:
                out.append(obj.copy())
        return out

    def iter_views_of_type(self, type_name: str) -> Iterator[RegistryObject]:
        """Stored objects of one class in id order — read-only, no copies."""
        objects = self._objects
        for object_id in self._indexes.sorted_ids.get(type_name, ()):
            obj = objects.get(object_id)
            if obj is not None:
                yield obj

    def select_objects(
        self,
        type_name: str,
        predicate: Callable[[RegistryObject], bool] | None = None,
    ) -> list[RegistryObject]:
        if predicate is None:
            return self.objects_of_type(type_name)
        # evaluate the predicate on the stored instances, copy only matches
        return [o.copy() for o in self.iter_views_of_type(type_name) if predicate(o)]

    # -- name lookups (index-backed) -----------------------------------------

    def find_ids_by_name(self, type_name: str, name: str) -> list[str]:
        """Ids of objects of *type_name* whose name equals *name* (sorted)."""
        bucket = self._indexes.by_name.get(type_name, {}).get(name)
        return sorted(bucket) if bucket else []

    def find_by_name(self, type_name: str, name: str) -> list[RegistryObject]:
        return [
            obj.copy()
            for i in self.find_ids_by_name(type_name, name)
            if (obj := self._objects.get(i)) is not None
        ]

    def find_views_by_name(self, type_name: str, name: str) -> list[RegistryObject]:
        """Read-only variant of :meth:`find_by_name` (no copies)."""
        return [
            obj
            for i in self.find_ids_by_name(type_name, name)
            if (obj := self._objects.get(i)) is not None
        ]

    def find_ids_by_names(self, type_name: str, names: Iterable[str]) -> list[str]:
        """Ids of objects of *type_name* whose name is any of *names* (sorted).

        The query planner's ``name IN (...)`` probe: one bucket lookup per
        name instead of a partition scan.
        """
        buckets = self._indexes.by_name.get(type_name)
        if not buckets:
            return []
        out: set[str] = set()
        for name in names:
            bucket = buckets.get(name)
            if bucket:
                out |= bucket
        return sorted(out)

    def filter_ids_of_type(
        self, type_name: str, candidate_ids: Iterable[str]
    ) -> list[str]:
        """The subset of *candidate_ids* stored under *type_name* (sorted).

        The query planner's id-equality / ``id IN (...)`` probe: set
        intersection against the type partition, never a scan.
        """
        bucket = self._indexes.by_type.get(type_name)
        if not bucket:
            return []
        return sorted(bucket.intersection(candidate_ids))

    def find_ids_by_name_prefix(self, type_name: str, prefix: str) -> list[str]:
        """Ids of objects whose name starts with *prefix*, via a range scan."""
        idx = self._indexes
        keys = idx.sorted_names.get(type_name, ())
        names = idx.by_name.get(type_name, {})
        out: list[str] = []
        for pos in range(bisect_left(keys, prefix), len(keys)):
            key = keys[pos]
            if not key.startswith(prefix):
                break
            out.extend(names.get(key, ()))
        return sorted(out)

    def find_by_name_prefix(self, type_name: str, prefix: str) -> list[RegistryObject]:
        return [
            obj.copy()
            for i in self.find_ids_by_name_prefix(type_name, prefix)
            if (obj := self._objects.get(i)) is not None
        ]

    def all_ids(self) -> list[str]:
        # derived from the published generation, not the mutable heap map,
        # so the result is one consistent membership list
        out: list[str] = []
        for ids in self._indexes.sorted_ids.values():
            out.extend(ids)
        out.sort()
        return out

    def count(self, type_name: str | None = None) -> int:
        if type_name is None:
            return len(self._objects)
        return len(self._indexes.by_type.get(type_name, ()))

    def type_names(self) -> list[str]:
        return sorted(
            name for name, ids in self._indexes.by_type.items() if ids
        )

    # -- transactions ----------------------------------------------------------

    @contextmanager
    def transaction(self) -> Iterator["DataStore"]:
        """Commit on success, roll back object heap *and* tables on error.

        Nested transactions join the outermost one (savepoints are not
        needed by the registry's request granularity).  The writer lock is
        held for the whole transaction — writers serialize, readers keep
        reading published generations (including the transaction's own
        intermediate publications, exactly as before).

        Rollback is record-driven: the buffered change records carry the
        pre-image of every heap object the transaction touched, so undo
        replays them in reverse instead of snapshotting the whole heap up
        front — entering a transaction costs O(tables), not O(heap).

        Nesting discipline: a transaction may contain a batch (the write
        scope's ``transaction() → batch()`` ordering — batch exit routes its
        coalesced records into the transaction buffer), but opening a
        transaction *inside* a batch that no transaction encloses is
        rejected: the batch would swallow the change records into its
        pending buffer, leaving rollback with no pre-images to replay.
        """
        with self._write():
            if self._batch is not None and self._txn_depth == 0:
                raise InvalidRequestError(
                    "cannot open a transaction inside an active batch: "
                    "batched change records bypass the transaction buffer, "
                    "so rollback could not undo them — open the transaction "
                    "first (transaction() then batch())"
                )
            if self._txn_depth == 0:
                self._txn_table_snapshots = {
                    name: table.snapshot() for name, table in self._tables.items()
                }
            self._txn_depth += 1
            try:
                yield self
            except BaseException:
                self._txn_depth -= 1
                if self._txn_depth == 0:
                    self._rollback()
                raise
            else:
                self._txn_depth -= 1
                if self._txn_depth == 0:
                    self._txn_table_snapshots = None
                    self._flush_txn_changes()

    def _rollback(self) -> None:
        assert self._txn_table_snapshots is not None
        # undo from the buffered records' pre-images, newest first: the
        # earliest pre-image of a multiply-touched object lands last.  The
        # restored map replaces the heap wholesale, abandoning the
        # transaction's map to any snapshot pinned before/within it — their
        # reads keep resolving against it (plus overlays), untouched.
        # Stored instances are immutable by contract, so restoring the
        # pre-image references (no copies) is safe.
        restored = dict(self._objects)
        for _op, _type_name, object_id, _payload, previous, _key in reversed(
            self._txn_changes
        ):
            if previous is not None:  # a save or delete: put the old one back
                restored[object_id] = previous
            else:  # an insert: the object did not exist before
                restored.pop(object_id, None)
        self._objects = restored
        self._rebuilt_indexes()
        for name, snapshot in self._txn_table_snapshots.items():
            if name in self._tables:
                self._tables[name].restore(snapshot)
        self._txn_table_snapshots = None
        # buffered records die with the transaction; the barrier tells views
        # that entries filled from its intermediate generations are invalid
        self._txn_changes.clear()
        self.changelog.append(OP_RESET, version=self.version)
        self._notify(None, None)
