"""The registry's persistent store: object heap + relational tables + transactions.

freebXML persists ebRIM objects through ``SQLPersistenceManagerImpl`` over
JDBC; here a :class:`DataStore` provides the same contract in memory:

* an **object heap** keyed by registry-object id, partitioned by type so the
  SQL-92 engine can treat each ebRIM class as a virtual table;
* named relational :class:`~repro.persistence.table.Table` instances for the
  genuinely tabular state (``NodeState``, repository items);
* per-request **transactions** with commit/rollback, giving the ACID-at-
  request-granularity behaviour the registry needs.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Iterator

from repro.persistence.table import Row, Table
from repro.rim.base import RegistryObject
from repro.util.errors import (
    InvalidRequestError,
    ObjectExistsError,
    ObjectNotFoundError,
)


class DataStore:
    """In-memory persistence for one registry instance."""

    def __init__(self) -> None:
        #: id → stored object (the store owns these; accessors get copies)
        self._objects: dict[str, RegistryObject] = {}
        #: type name → set of ids (virtual-table partitions)
        self._by_type: dict[str, set[str]] = {}
        self._tables: dict[str, Table] = {}
        self._txn_depth = 0
        self._txn_object_snapshot: dict[str, RegistryObject] | None = None
        self._txn_table_snapshots: dict[str, dict[Any, Row]] | None = None

    # -- relational tables ---------------------------------------------------

    def create_table(
        self,
        name: str,
        columns: list[str],
        *,
        primary_key: str,
        indexes: list[str] | None = None,
    ) -> Table:
        if name in self._tables:
            raise InvalidRequestError(f"table already exists: {name!r}")
        table = Table(name, columns, primary_key=primary_key, indexes=indexes or ())
        self._tables[name] = table
        return table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise ObjectNotFoundError(name, f"no such table: {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    # -- object heap ---------------------------------------------------------

    def insert_object(self, obj: RegistryObject) -> None:
        if obj.id in self._objects:
            raise ObjectExistsError(obj.id)
        self._objects[obj.id] = obj.copy()
        self._by_type.setdefault(obj.type_name, set()).add(obj.id)

    def save_object(self, obj: RegistryObject) -> None:
        """Insert-or-replace; type changes for an existing id are rejected."""
        existing = self._objects.get(obj.id)
        if existing is not None and type(existing) is not type(obj):
            raise InvalidRequestError(
                f"object {obj.id} cannot change type "
                f"{existing.type_name} → {obj.type_name}"
            )
        self._objects[obj.id] = obj.copy()
        self._by_type.setdefault(obj.type_name, set()).add(obj.id)

    def get_object(self, object_id: str) -> RegistryObject | None:
        obj = self._objects.get(object_id)
        return obj.copy() if obj is not None else None

    def require_object(self, object_id: str) -> RegistryObject:
        obj = self.get_object(object_id)
        if obj is None:
            raise ObjectNotFoundError(object_id)
        return obj

    def delete_object(self, object_id: str) -> None:
        obj = self._objects.pop(object_id, None)
        if obj is None:
            raise ObjectNotFoundError(object_id)
        self._by_type.get(obj.type_name, set()).discard(object_id)

    def contains(self, object_id: str) -> bool:
        return object_id in self._objects

    def objects_of_type(self, type_name: str) -> list[RegistryObject]:
        """All stored objects of one ebRIM class (copies), in id order."""
        ids = sorted(self._by_type.get(type_name, ()))
        return [self._objects[i].copy() for i in ids]

    def select_objects(
        self,
        type_name: str,
        predicate: Callable[[RegistryObject], bool] | None = None,
    ) -> list[RegistryObject]:
        objs = self.objects_of_type(type_name)
        if predicate is None:
            return objs
        return [o for o in objs if predicate(o)]

    def all_ids(self) -> list[str]:
        return sorted(self._objects)

    def count(self, type_name: str | None = None) -> int:
        if type_name is None:
            return len(self._objects)
        return len(self._by_type.get(type_name, ()))

    def type_names(self) -> list[str]:
        return sorted(name for name, ids in self._by_type.items() if ids)

    # -- transactions ----------------------------------------------------------

    @contextmanager
    def transaction(self) -> Iterator["DataStore"]:
        """Commit on success, roll back object heap *and* tables on error.

        Nested transactions join the outermost one (savepoints are not
        needed by the registry's request granularity).
        """
        if self._txn_depth == 0:
            self._txn_object_snapshot = {
                oid: obj.copy() for oid, obj in self._objects.items()
            }
            self._txn_table_snapshots = {
                name: table.snapshot() for name, table in self._tables.items()
            }
        self._txn_depth += 1
        try:
            yield self
        except BaseException:
            self._txn_depth -= 1
            if self._txn_depth == 0:
                self._rollback()
            raise
        else:
            self._txn_depth -= 1
            if self._txn_depth == 0:
                self._txn_object_snapshot = None
                self._txn_table_snapshots = None

    def _rollback(self) -> None:
        assert self._txn_object_snapshot is not None
        assert self._txn_table_snapshots is not None
        self._objects = self._txn_object_snapshot
        self._by_type = {}
        for oid, obj in self._objects.items():
            self._by_type.setdefault(obj.type_name, set()).add(oid)
        for name, snapshot in self._txn_table_snapshots.items():
            if name in self._tables:
                self._tables[name].restore(snapshot)
        self._txn_object_snapshot = None
        self._txn_table_snapshots = None
