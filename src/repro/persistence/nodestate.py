"""The NodeState table — the load-balancing scheme's monitoring store.

Thesis Figure 3.2: ``NodeState(HOST pk, LOAD, MEMORY, SWAPMEMORY)`` holds the
most recent performance sample per monitored host.  We add an ``UPDATED``
timestamp column (the registry needs it to age out dead hosts and it is what
the staleness ablation LB-2 measures) — freebXML overwrote rows in place,
which is exactly ``record_sample``'s upsert.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.persistence.datastore import DataStore
from repro.persistence.table import Table

NODESTATE_TABLE = "NodeState"


@dataclass(frozen=True)
class NodeSample:
    """One monitoring sample for one host.

    ``load`` is the CPU load (run-queue length, like ``uptime``'s 1-minute
    load average); ``memory`` and ``swap_memory`` are *available* bytes.
    """

    host: str
    load: float
    memory: int
    swap_memory: int
    updated: float

    def as_row(self) -> dict:
        return {
            "HOST": self.host,
            "LOAD": self.load,
            "MEMORY": self.memory,
            "SWAPMEMORY": self.swap_memory,
            "UPDATED": self.updated,
        }

    @classmethod
    def from_row(cls, row: dict) -> "NodeSample":
        return cls(
            host=row["HOST"],
            load=row["LOAD"],
            memory=row["MEMORY"],
            swap_memory=row["SWAPMEMORY"],
            updated=row["UPDATED"],
        )


class NodeStateStore:
    """Typed facade over the NodeState table."""

    def __init__(self, store: DataStore) -> None:
        if store.has_table(NODESTATE_TABLE):
            self._table: Table = store.table(NODESTATE_TABLE)
        else:
            self._table = store.create_table(
                NODESTATE_TABLE,
                ["HOST", "LOAD", "MEMORY", "SWAPMEMORY", "UPDATED"],
                primary_key="HOST",
            )

    def record_sample(self, sample: NodeSample) -> None:
        """Store the latest sample for a host (overwrites the previous row)."""
        self._table.upsert(sample.as_row())

    def get(self, host: str) -> NodeSample | None:
        row = self._table.get(host)
        return NodeSample.from_row(row) if row is not None else None

    def remove(self, host: str) -> None:
        if host in self._table:
            self._table.delete(host)

    def hosts(self) -> list[str]:
        return sorted(self._table.keys())

    def all_samples(self) -> list[NodeSample]:
        return [NodeSample.from_row(row) for row in self._table.select()]

    def fresh_samples(self, *, now: float, max_age: float | None) -> list[NodeSample]:
        """Samples no older than *max_age* seconds (all samples if None)."""
        samples = self.all_samples()
        if max_age is None:
            return samples
        return [s for s in samples if now - s.updated <= max_age]

    def __len__(self) -> int:
        return len(self._table)
