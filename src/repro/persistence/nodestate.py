"""The NodeState table — the load-balancing scheme's monitoring store.

Thesis Figure 3.2: ``NodeState(HOST pk, LOAD, MEMORY, SWAPMEMORY)`` holds the
most recent performance sample per monitored host.  We add an ``UPDATED``
timestamp column (the registry needs it to age out dead hosts and it is what
the staleness ablation LB-2 measures) — freebXML overwrote rows in place,
which is exactly ``record_sample``'s upsert.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.persistence.datastore import DataStore
from repro.persistence.table import Table

NODESTATE_TABLE = "NodeState"


@dataclass(frozen=True)
class NodeSample:
    """One monitoring sample for one host.

    ``load`` is the CPU load (run-queue length, like ``uptime``'s 1-minute
    load average); ``memory`` and ``swap_memory`` are *available* bytes.
    """

    host: str
    load: float
    memory: int
    swap_memory: int
    updated: float

    def as_row(self) -> dict:
        return {
            "HOST": self.host,
            "LOAD": self.load,
            "MEMORY": self.memory,
            "SWAPMEMORY": self.swap_memory,
            "UPDATED": self.updated,
        }

    @classmethod
    def from_row(cls, row: dict) -> "NodeSample":
        return cls(
            host=row["HOST"],
            load=row["LOAD"],
            memory=row["MEMORY"],
            swap_memory=row["SWAPMEMORY"],
            updated=row["UPDATED"],
        )


class NodeStateStore:
    """Typed facade over the NodeState table.

    Reads are served from a per-instance :class:`NodeSample` cache validated
    against the table's mutation counter, so the per-query per-host lookup on
    the discovery path does no row copying or dataclass construction between
    monitoring sweeps — and stays correct across direct table writes,
    transaction rollback, and other facade instances over the same table.

    Concurrency: the cache is a ``(version, map)`` pair published by a single
    attribute store.  A reader that finds the pair stale swap-publishes a
    fresh map; fills always land in the map captured *at validation time*, so
    a racing write can at worst strand a fill in an abandoned map (a future
    cache miss) — it can never surface a stale sample under a new version.
    Writers serialize on a small lock so a sweep (:class:`TimeHits`) and the
    ranking path can run concurrently with request dispatch.
    """

    def __init__(self, store: DataStore) -> None:
        if store.has_table(NODESTATE_TABLE):
            self._table: Table = store.table(NODESTATE_TABLE)
        else:
            self._table = store.create_table(
                NODESTATE_TABLE,
                ["HOST", "LOAD", "MEMORY", "SWAPMEMORY", "UPDATED"],
                primary_key="HOST",
            )
        #: (table mutation counter, sample map) — replaced, never cleared
        self._cache: tuple[int, dict[str, NodeSample]] = (-1, {})
        self._write_lock = threading.Lock()

    @property
    def version(self) -> int:
        """The underlying table's mutation counter — changes on every write."""
        return self._table.mutations

    def _sample_cache(self) -> dict[str, NodeSample]:
        version = self._table.mutations
        cached_version, samples = self._cache
        if cached_version != version:
            samples = {}
            self._cache = (version, samples)
        return samples

    def record_sample(self, sample: NodeSample) -> None:
        """Store the latest sample for a host (overwrites the previous row)."""
        with self._write_lock:
            self._table.upsert(sample.as_row())
            # prime a fresh cache generation paired with the post-write version
            self._cache = (self._table.mutations, {sample.host: sample})

    def get(self, host: str) -> NodeSample | None:
        cache = self._sample_cache()
        sample = cache.get(host)
        if sample is None:
            row = self._table.get_view(host)
            if row is None:
                return None
            sample = NodeSample.from_row(row)
            cache[host] = sample
        return sample

    def remove(self, host: str) -> None:
        with self._write_lock:
            if host in self._table:
                self._table.delete(host)

    def hosts(self) -> list[str]:
        return sorted(self._table.keys())

    def all_samples(self) -> list[NodeSample]:
        return [NodeSample.from_row(row) for row in self._table.select()]

    def fresh_samples(self, *, now: float, max_age: float | None) -> list[NodeSample]:
        """Samples no older than *max_age* seconds (all samples if None)."""
        samples = self.all_samples()
        if max_age is None:
            return samples
        return [s for s in samples if now - s.updated <= max_age]

    def __len__(self) -> int:
        return len(self._table)
