"""Materialized discovery views, incrementally maintained off the changelog.

PR 1–5 cached discovery answers behind coarse version keys: any heap write
re-keyed every cache, so a mixed read/write workload rebuilt the whole
cache population once per write.  These views replace that with
**per-record delta application**: each view tracks an applied-sequence
watermark into the store's :class:`~repro.persistence.changelog.ChangeLog`
and, on :meth:`~ChangelogView.catch_up`, drops exactly the entries each
new record affects.  A write to one service invalidates one view entry,
not the population.

Fill protocol (the swap-publish discipline, sequenced): a reader calls
``catch_up()`` and keeps the returned watermark as its ``as_of`` token,
computes the answer from the live heap (which, by the changelog's
ordering contract, is at least as new as ``as_of``), then offers it via
``put(..., as_of=...)``.  The put is rejected when the view has applied
records past ``as_of`` — a racing write may have made the fill stale, so
it is stranded (a future miss) rather than cached.  Records not yet
applied at put time are harmless: the next catch-up applies them and
drops the entry if affected.

A ``"reset"`` barrier (transaction rollback) clears a view wholesale:
entries may have been filled from the transaction's intermediate,
since-rolled-back generations, and no per-record history of those exists.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Iterable

from repro.persistence.changelog import OP_RESET, ChangeRecord

if TYPE_CHECKING:  # pragma: no cover
    from repro.persistence.datastore import DataStore


class ChangelogView:
    """Base class: the watermark + catch-up loop shared by every view."""

    def __init__(self, store: "DataStore") -> None:
        self._store = store
        self._log = store.changelog
        #: guards entry mutation and the watermark; catch-up and put
        #: serialize on it so a fill can never outrun an invalidation
        self._lock = threading.Lock()
        self._applied = self._log.last_seq
        self.records_applied = 0
        self.resets_applied = 0

    @property
    def applied_seq(self) -> int:
        """The changelog watermark this view has applied up to."""
        return self._applied

    def catch_up(self) -> int:
        """Apply every new changelog record; returns the new watermark.

        The fast path — no new records — is one integer compare, so read
        paths call this per lookup without measurable cost.
        """
        applied = self._applied
        if self._log.last_seq == applied:
            return applied
        with self._lock:
            pending = self._log.records_since(self._applied)
            for record in pending:
                if record.op == OP_RESET:
                    self._reset()
                    self.resets_applied += 1
                else:
                    self._apply(record)
                self.records_applied += 1
            if pending:
                self._applied = pending[-1].seq
            return self._applied

    def invalidate_all(self) -> None:
        """Drop every entry and fast-forward past the current log tail."""
        with self._lock:
            self._reset()
            self._applied = self._log.last_seq

    # -- subclass hooks (called under ``_lock``) -------------------------------

    def _apply(self, record: ChangeRecord) -> None:  # pragma: no cover
        raise NotImplementedError

    def _reset(self) -> None:  # pragma: no cover
        raise NotImplementedError


class ServiceUriView(ChangelogView):
    """service id → (resolver token, access URIs) — the discovery hot path.

    Maintained deltas: a record touching a ``Service`` drops that service's
    entry; a record touching a ``ServiceBinding`` drops the owning
    service's entry — from the post-image *and* the pre-image, so a
    binding re-pointed between services invalidates both sides.  Every
    other write leaves the view intact (this is the whole point: an
    Organization churn burst no longer costs discovery its cache).
    """

    def __init__(self, store: "DataStore") -> None:
        super().__init__(store)
        self._entries: dict[str, tuple[object, list[str]]] = {}
        self.invalidations = 0

    def _apply(self, record: ChangeRecord) -> None:
        if record.type_name == "Service":
            if self._entries.pop(record.object_id, None) is not None:
                self.invalidations += 1
        elif record.type_name == "ServiceBinding":
            for obj in (record.payload, record.previous):
                service_id = getattr(obj, "service", None)
                if service_id and self._entries.pop(service_id, None) is not None:
                    self.invalidations += 1

    def _reset(self) -> None:
        self._entries.clear()

    def get(self, service_id: str) -> tuple[object, list[str]] | None:
        return self._entries.get(service_id)

    def put(
        self, service_id: str, token: object, uris: list[str], *, as_of: int
    ) -> None:
        with self._lock:
            if as_of < self._applied:
                return  # a write landed since the fill started: strand it
            self._entries[service_id] = (token, uris)

    def __len__(self) -> int:
        return len(self._entries)


class QueryResultView(ChangelogView):
    """query text → projected rows, for hot ad-hoc plans over virtual tables.

    Entries register under every RIM type their statement (including
    subqueries) reads — the ``RegistryObject`` union view registers under
    ``"*"`` — and a changelog record drops exactly the entries registered
    for its type (plus all ``"*"`` entries).  Statements touching
    relational tables are never cached here: ``Table`` writes (NodeState
    samples) bypass the heap and therefore the changelog.
    """

    def __init__(self, store: "DataStore", *, capacity: int = 256) -> None:
        super().__init__(store)
        self.capacity = capacity
        #: query text → (registered type names, result rows); LRU-ordered
        self._entries: "OrderedDict[str, tuple[frozenset[str], tuple]]" = (
            OrderedDict()
        )
        #: reverse index: type name → keys registered for it
        self._by_type: dict[str, set[str]] = {}
        self.invalidations = 0

    def _apply(self, record: ChangeRecord) -> None:
        affected: set[str] = set()
        for type_name in (record.type_name, "*"):
            keys = self._by_type.get(type_name)
            if keys:
                affected.update(keys)
        for key in affected:
            self._drop(key)
            self.invalidations += 1

    def _drop(self, key: str) -> None:
        entry = self._entries.pop(key, None)
        if entry is None:
            return
        for type_name in entry[0]:
            keys = self._by_type.get(type_name)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._by_type[type_name]

    def _reset(self) -> None:
        self._entries.clear()
        self._by_type.clear()

    def get(self, key: str) -> tuple | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            self._entries.move_to_end(key)
            return entry[1]

    def put(
        self, key: str, type_names: Iterable[str], rows: tuple, *, as_of: int
    ) -> None:
        with self._lock:
            if as_of < self._applied:
                return
            self._drop(key)  # re-registering: clear any old type links
            while len(self._entries) >= self.capacity:
                self._drop(next(iter(self._entries)))
            names = frozenset(type_names)
            self._entries[key] = (names, rows)
            for type_name in names:
                self._by_type.setdefault(type_name, set()).add(key)

    def __len__(self) -> int:
        return len(self._entries)

    def view_stats(self) -> dict[str, int]:
        return {
            "entries": len(self._entries),
            "capacity": self.capacity,
            "applied_seq": self._applied,
            "invalidations": self.invalidations,
            "resets_applied": self.resets_applied,
        }
