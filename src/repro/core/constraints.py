"""The constraint language of the load-balancing scheme (thesis §3.2, Table 3.5).

Constraints ride inside a Service's *description* field as an XML block::

    <constraint>
      <cpuLoad>load ls 1.0</cpuLoad>
      <memory>memory gr 3GB</memory>
      <swapmemory>swapmemory gr 5MB</swapmemory>
      <starttime>1000</starttime>
      <endtime>1200</endtime>
    </constraint>

Grammar notes, straight from the thesis:

* keywords ``load``, ``memory``, ``swapmemory``, ``starttime``, ``endtime``;
* operators ``gt``/``gr`` (the thesis uses both spellings for greater-than),
  ``geq``, ``ls``, ``leq``, ``eq``;
* memory sizes in ``KB``/``MB``/``GB`` (we accept ``B``/``TB`` too);
* times in military format;
* the root element is spelled ``<constraint>`` in the §3.2 example and
  ``<constrain>`` in the DTD of §3.4.4.2 — both are accepted.

A *lenient* parse (the default) returns ``None`` for missing or malformed
constraints, reproducing ServiceConstraint's "returns false if no valid
service constraints are specified" behaviour; ``strict=True`` raises
:class:`ConstraintSyntaxError` instead (used by publish-time validation).
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Callable

from repro.persistence.nodestate import NodeSample
from repro.util.errors import ConstraintSyntaxError
from repro.util.units import parse_memory_size, parse_military_time
from repro.util.xmlutil import parse_xml

#: accepted root tags for the constraint block
CONSTRAINT_TAGS = ("constraint", "constrain")

_CONSTRAINT_BLOCK_RE = re.compile(
    r"<(constraint|constrain)\b.*?</\1\s*>", re.DOTALL | re.IGNORECASE
)


class Operator(enum.Enum):
    """Comparison operators of Table 3.5 (plus the §3.2 ``gr`` spelling)."""

    GT = "gt"
    GEQ = "geq"
    LS = "ls"
    LEQ = "leq"
    EQ = "eq"

    @classmethod
    def from_symbol(cls, symbol: str) -> "Operator":
        symbol = symbol.lower()
        if symbol == "gr":  # §3.2 spelling of greater-than
            return cls.GT
        for member in cls:
            if member.value == symbol:
                return member
        raise ConstraintSyntaxError(f"unknown constraint operator: {symbol!r}")

    def compare(self, left: float, right: float) -> bool:
        return _COMPARE[self](left, right)

    @property
    def symbol(self) -> str:
        return self.value


#: dispatch table for :meth:`Operator.compare`, built once — the comparison
#: runs per host per discovery, so a per-call dict rebuild is hot-path waste
_COMPARE: dict[Operator, Callable[[float, float], bool]] = {
    Operator.GT: lambda a, b: a > b,
    Operator.GEQ: lambda a, b: a >= b,
    Operator.LS: lambda a, b: a < b,
    Operator.LEQ: lambda a, b: a <= b,
    Operator.EQ: lambda a, b: a == b,
}


@dataclass(frozen=True)
class ScalarConstraint:
    """One ``keyword op value`` clause."""

    keyword: str  # "load" | "memory" | "swapmemory"
    op: Operator
    value: float  # load value, or byte count for memory clauses

    def __post_init__(self) -> None:
        # bind the comparator once: satisfied_by runs per host per discovery
        object.__setattr__(self, "_compare", _COMPARE[self.op])

    def satisfied_by(self, observed: float) -> bool:
        return self._compare(observed, self.value)

    def text(self) -> str:
        """Render back to the thesis' clause syntax (lossless round trip)."""
        if self.keyword == "load":
            return f"load {self.op.symbol} {self.value:g}"
        from repro.util.units import format_bytes_exact

        return f"{self.keyword} {self.op.symbol} {format_bytes_exact(int(self.value))}"


@dataclass(frozen=True)
class TimeWindow:
    """Availability window in minutes past midnight (military-time bounds).

    Windows may wrap midnight (``2200``–``0600``) — an extension beyond the
    thesis, which only shows same-day windows; non-wrapping windows behave
    identically to the thesis semantics (``starttime <= now <= endtime``).
    """

    start_minutes: int
    end_minutes: int

    def contains(self, minutes_of_day: int) -> bool:
        if self.start_minutes <= self.end_minutes:
            return self.start_minutes <= minutes_of_day <= self.end_minutes
        return minutes_of_day >= self.start_minutes or minutes_of_day <= self.end_minutes


_CLAUSE_RE = re.compile(
    r"^\s*(?P<keyword>[A-Za-z]+)\s+(?P<op>[A-Za-z]+)\s+(?P<value>\S+)\s*$"
)

#: element tag → the keyword its clause must use
_TAG_KEYWORDS = {
    "cpuLoad": "load",
    "memory": "memory",
    "swapmemory": "swapmemory",
}


@dataclass(frozen=True)
class ConstraintSet:
    """The parsed constraints of one service."""

    cpu_load: ScalarConstraint | None = None
    memory: ScalarConstraint | None = None
    swap_memory: ScalarConstraint | None = None
    window: TimeWindow | None = None

    def has_performance_constraints(self) -> bool:
        return any((self.cpu_load, self.memory, self.swap_memory))

    def has_any(self) -> bool:
        return self.has_performance_constraints() or self.window is not None

    # -- evaluation --------------------------------------------------------

    def time_satisfied(self, minutes_of_day: int) -> bool:
        """True when there is no window or *minutes_of_day* falls inside it."""
        return self.window is None or self.window.contains(minutes_of_day)

    def satisfied_by(self, sample: NodeSample) -> bool:
        """Evaluate the performance clauses against one NodeState sample."""
        if self.cpu_load is not None and not self.cpu_load.satisfied_by(sample.load):
            return False
        if self.memory is not None and not self.memory.satisfied_by(sample.memory):
            return False
        if self.swap_memory is not None and not self.swap_memory.satisfied_by(
            sample.swap_memory
        ):
            return False
        return True

    # -- rendering -----------------------------------------------------------

    def to_xml(self) -> str:
        """Serialize back to the thesis' ``<constraint>`` block."""
        parts = ["<constraint>"]
        if self.cpu_load is not None:
            parts.append(f"<cpuLoad>{self.cpu_load.text()}</cpuLoad>")
        if self.memory is not None:
            parts.append(f"<memory>{self.memory.text()}</memory>")
        if self.swap_memory is not None:
            parts.append(f"<swapmemory>{self.swap_memory.text()}</swapmemory>")
        if self.window is not None:
            from repro.util.units import format_military_time

            parts.append(
                f"<starttime>{format_military_time(self.window.start_minutes)}</starttime>"
            )
            parts.append(
                f"<endtime>{format_military_time(self.window.end_minutes)}</endtime>"
            )
        parts.append("</constraint>")
        return "".join(parts)


def _parse_clause(tag: str, text: str) -> ScalarConstraint:
    expected_keyword = _TAG_KEYWORDS[tag]
    match = _CLAUSE_RE.match(text)
    if match is None:
        raise ConstraintSyntaxError(f"malformed <{tag}> clause: {text!r}")
    keyword = match.group("keyword").lower()
    if keyword != expected_keyword:
        raise ConstraintSyntaxError(
            f"<{tag}> clause must use keyword {expected_keyword!r}, got {keyword!r}"
        )
    op = Operator.from_symbol(match.group("op"))
    raw_value = match.group("value")
    if expected_keyword == "load":
        try:
            value = float(raw_value)
        except ValueError:
            raise ConstraintSyntaxError(f"invalid load value: {raw_value!r}") from None
    else:
        value = float(parse_memory_size(raw_value))
    return ScalarConstraint(keyword=expected_keyword, op=op, value=value)


def parse_constraint_block(xml_text: str) -> ConstraintSet:
    """Parse one ``<constraint>…</constraint>`` block (strict)."""
    root = parse_xml(xml_text.strip(), what="constraint block")
    if root.tag not in CONSTRAINT_TAGS:
        raise ConstraintSyntaxError(
            f"constraint root must be one of {CONSTRAINT_TAGS}, got <{root.tag}>"
        )
    cpu_load = memory = swap = None
    start = end = None
    for child in root:
        text = (child.text or "").strip()
        if child.tag in _TAG_KEYWORDS:
            clause = _parse_clause(child.tag, text)
            if child.tag == "cpuLoad":
                if cpu_load is not None:
                    raise ConstraintSyntaxError("duplicate <cpuLoad> clause")
                cpu_load = clause
            elif child.tag == "memory":
                if memory is not None:
                    raise ConstraintSyntaxError("duplicate <memory> clause")
                memory = clause
            else:
                if swap is not None:
                    raise ConstraintSyntaxError("duplicate <swapmemory> clause")
                swap = clause
        elif child.tag == "starttime":
            start = parse_military_time(text)
        elif child.tag == "endtime":
            end = parse_military_time(text)
        else:
            raise ConstraintSyntaxError(f"unknown constraint element: <{child.tag}>")
    window = None
    if (start is None) != (end is None):
        raise ConstraintSyntaxError(
            "starttime and endtime must be specified together"
        )
    if start is not None and end is not None:
        window = TimeWindow(start_minutes=start, end_minutes=end)
    return ConstraintSet(cpu_load=cpu_load, memory=memory, swap_memory=swap, window=window)


def parse_constraints(description: str | None, *, strict: bool = False) -> ConstraintSet | None:
    """Extract and parse the constraint block embedded in a description.

    Returns None when the description holds no (valid) constraint block.
    With ``strict=True`` a present-but-malformed block raises instead — the
    publish-time validation mode.
    """
    if not description:
        return None
    match = _CONSTRAINT_BLOCK_RE.search(description)
    if match is None:
        return None
    try:
        constraints = parse_constraint_block(match.group(0))
    except ConstraintSyntaxError:
        if strict:
            raise
        return None
    if not constraints.has_any():
        return None
    return constraints
