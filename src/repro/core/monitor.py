"""TimeHits — the registry's periodic monitoring collector (thesis §3.2).

Figure 3.1's TimeHits class "is responsible for two things: to invoke the
NodeStatus Web Service periodically and to collect and store current host
performance data into the database."  The data is collected every **25
seconds** by default, "however this period can be reconfigured by the
freebXML administrator."

This implementation discovers its targets the way the thesis deploys them:
the administrator publishes the **NodeStatus** service to the registry with
one access URI per monitored host (Figure 3.7), and TimeHits invokes each
URI through the transport.  Unreachable hosts are skipped (and their stale
NodeState rows age out via LoadStatus's ``max_age``); one dead host must not
stall monitoring of the rest.

TimeHits is also the longitudinal observability feed: with the telemetry
history store enabled, every sweep records per-host time series
(``node.<host>.load``/``memory``/``swap``/``age``/``probe_latency``/
``failure``); with SLOs defined, every probe lands as a ``probe``
availability event; and the registry's ``node_staleness`` health check —
degraded when any host's newest sample is older than 2× the period,
unhealthy when all are — is registered here, where the period is known.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.persistence.nodestate import NodeSample, NodeStateStore
from repro.rim.service import host_of_uri
from repro.sim.engine import PeriodicTask, SimEngine
from repro.sim.nodestatus import NODESTATUS_SERVICE_NAME, NodeStatusReading
from repro.soap.transport import SimTransport
from repro.util.errors import TransportError

if TYPE_CHECKING:  # pragma: no cover
    from repro.registry.server import RegistryServer

#: the thesis' default collection period, seconds
DEFAULT_PERIOD = 25.0


class TimeHits:
    """Periodic NodeStatus collection into the NodeState table."""

    def __init__(
        self,
        registry: "RegistryServer",
        transport: SimTransport,
        engine: SimEngine,
        *,
        period: float = DEFAULT_PERIOD,
        monitor_service_name: str = NODESTATUS_SERVICE_NAME,
    ) -> None:
        self.registry = registry
        self.transport = transport
        self.engine = engine
        self.period = period
        self.monitor_service_name = monitor_service_name
        self.node_state: NodeStateStore = registry.node_state
        self._task: PeriodicTask | None = None
        self.telemetry = getattr(registry, "telemetry", None)
        #: telemetry tracer (one span per collect cycle when tracing is on)
        self.tracer = self.telemetry and self.telemetry.tracer
        self.collections = 0
        self.samples_stored = 0
        self.failures = 0
        #: callables invoked after every sweep (e.g. the AutoScaler)
        self.post_sweep_hooks: list = []
        #: (heap version, target list) — stamped with the version captured
        #: *before* the scan, so a topology write landing mid-scan leaves a
        #: tuple that fails validation (recompute) instead of a stale cache;
        #: safe to race with request dispatch (None = dirty)
        self._target_cache: tuple[int, list[str]] | None = None
        registry.store.add_write_listener(self._on_store_write)
        if self.telemetry is not None:
            self.telemetry.register_health_check("node_staleness", self.staleness_check)
            self.telemetry.slos.register_gauge("node_staleness", self.max_sample_age)

    # -- target discovery ----------------------------------------------------

    def _on_store_write(self, type_name: str | None, object_id: str | None) -> None:
        """Invalidate the target cache when the published topology changes."""
        if type_name in (None, "Service", "ServiceBinding"):
            self._target_cache = None

    def target_uris(self) -> list[str]:
        """Access URIs of every published NodeStatus deployment.

        Reads the *raw* binding list (publisher order, no resolver) — the
        monitor must see every host, including overloaded ones.  The list is
        cached between sweeps and recomputed only after a Service or
        ServiceBinding write (a NodeStatus publish/retire), so the 25 s sweep
        does no registry scan in steady state.
        """
        cached = self._target_cache
        version = self.registry.store.version
        if cached is not None and cached[0] == version:
            return list(cached[1])
        daos = self.registry.daos
        services = daos.services.find_views_by_name(self.monitor_service_name)
        uris: list[str] = []
        for service in services:
            for binding in daos.service_bindings.for_service(service, copy=False):
                if binding.access_uri and binding.access_uri not in uris:
                    uris.append(binding.access_uri)
        self._target_cache = (version, uris)
        return list(uris)

    # -- collection ---------------------------------------------------------------

    def collect_once(self) -> int:
        """One monitoring sweep; returns the number of samples stored.

        With tracing enabled the sweep runs inside a ``timehits.collect``
        span (per-target transport attempts nest under it when the transport
        is traced too).
        """
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            with tracer.span("timehits.collect", cycle=self.collections + 1) as span:
                stored = self._collect()
                span.tags["stored"] = stored
            return stored
        return self._collect()

    def _collect(self) -> int:
        self.collections += 1
        telemetry = self.telemetry
        history = telemetry.history if telemetry is not None else None
        if history is not None and not history.enabled:
            history = None
        slos = telemetry.slos if telemetry is not None else None
        if slos is not None and not slos.active:
            slos = None
        now = self.engine.now
        stored = 0
        failed = 0
        for uri in self.target_uris():
            host = host_of_uri(uri)
            latency_before = self.transport.stats.total_latency
            try:
                reading = self.transport.request(uri, "getNodeStatus")
            except TransportError:
                reading = None
            probe_latency = self.transport.stats.total_latency - latency_before
            if not isinstance(reading, NodeStatusReading):
                self.failures += 1
                failed += 1
                if history is not None:
                    history.record(f"node.{host}.failure", 1.0, t=now)
                    history.record(f"node.{host}.probe_latency", probe_latency, t=now)
                if slos is not None:
                    slos.record_event("probe", ok=False, latency=probe_latency)
                continue
            self.node_state.record_sample(
                NodeSample(
                    host=host,
                    load=reading.cpu_load,
                    memory=reading.memory_available,
                    swap_memory=reading.swap_available,
                    updated=now,
                )
            )
            stored += 1
            if history is not None:
                history.record(f"node.{host}.load", reading.cpu_load, t=now)
                history.record(f"node.{host}.memory", reading.memory_available, t=now)
                history.record(f"node.{host}.swap", reading.swap_available, t=now)
                history.record(f"node.{host}.failure", 0.0, t=now)
                history.record(f"node.{host}.probe_latency", probe_latency, t=now)
            if slos is not None:
                slos.record_event("probe", ok=True, latency=probe_latency)
        if history is not None:
            # sample *age* per monitored host — grows between sweeps for any
            # host whose probe keeps failing (the staleness signal over time)
            for sample in self.node_state.all_samples():
                history.record(f"node.{sample.host}.age", now - sample.updated, t=now)
        self.samples_stored += stored
        if telemetry is not None and telemetry.log.enabled:
            telemetry.log.emit(
                "timehits.sweep",
                cycle=self.collections,
                stored=stored,
                failed=failed,
                targets=len(self.target_uris()),
            )
        for hook in self.post_sweep_hooks:
            hook()
        return stored

    # -- failure attribution --------------------------------------------------------

    def endpoint_failures(self) -> dict[str, int]:
        """Per-target failure attribution from the transport stats.

        Maps each currently-published NodeStatus URI to the number of failed
        invocation attempts the transport recorded against it (including
        attempts consumed by the transport's retry stage), so one flaky host
        is distinguishable from a generally lossy network.
        """
        failures = self.transport.stats.per_endpoint_failures
        return {uri: failures[uri] for uri in self.target_uris() if uri in failures}

    # -- staleness -------------------------------------------------------------

    def max_sample_age(self) -> float:
        """Age in seconds of the *stalest* host's newest sample (0 when none).

        This is the gauge the ``node-staleness`` SLO evaluates.
        """
        now = self.engine.now
        return max((now - s.updated for s in self.node_state.all_samples()), default=0.0)

    def staleness_check(self) -> dict:
        """The ``node_staleness`` health check: 2× the period is too old.

        ``degraded`` while any monitored host's newest sample exceeds the
        threshold, ``unhealthy`` when every one does (monitoring is blind).
        """
        threshold = 2.0 * self.period
        now = self.engine.now
        samples = self.node_state.all_samples()
        stale = sorted(s.host for s in samples if now - s.updated > threshold)
        if not samples or not stale:
            status = "ok"
        elif len(stale) == len(samples):
            status = "unhealthy"
        else:
            status = "degraded"
        return {"status": status, "stale_hosts": stale, "threshold_s": threshold}

    def collector_stats(self) -> dict:
        """Collection-cycle tallies (the telemetry surface)."""
        return {
            "collections": self.collections,
            "samples_stored": self.samples_stored,
            "failures": self.failures,
            "targets": len(self.target_uris()),
            "period_s": self.period,
            "running": self.running,
            "endpoint_failures": self.endpoint_failures(),
        }

    # -- scheduling -------------------------------------------------------------------

    def start(self, *, immediate: bool = True) -> None:
        """Begin periodic collection on the simulation engine."""
        if self._task is not None:
            return
        if immediate:
            self.collect_once()
        self._task = self.engine.schedule_periodic(self.period, self.collect_once)

    def stop(self) -> None:
        if self._task is not None:
            self._task.stop()
            self._task = None

    def set_period(self, period: float) -> None:
        """Reconfigure the collection period (the administrator's knob)."""
        self.period = period
        if self._task is not None:
            self._task.set_period(period)

    @property
    def running(self) -> bool:
        return self._task is not None
