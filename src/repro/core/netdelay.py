"""Network-delay ranking — the thesis' future-work extension (§5.2).

*"Parameters such as network delay can be added as one of the constraints
used to rank the access URIs.  Network delay takes into account network
traffic and packet latency, thus access URIs for a Web Service are ranked on
an estimated time required to access a particular Web Service deployed on
multiple hosts."*

:class:`NetworkAwareResolver` decorates any binding resolver: after the base
resolver produces its (possibly constraint-filtered) list, bindings are
re-ranked by **estimated access time** = one-way network delay to the host +
an optional queueing estimate derived from the host's monitored load.  A
``networkdelay`` slot on the service (``networkdelay ls 0.05`` style clause)
acts as a hard cap, mirroring how the scalar constraints work.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Sequence

from repro.core.constraints import Operator
from repro.core.load_status import LoadStatus
from repro.persistence.dao import BindingResolver
from repro.rim import Service, ServiceBinding
from repro.soap.transport import SimTransport
from repro.util.errors import ConstraintSyntaxError

#: slot the cap clause is read from
NETWORK_DELAY_SLOT = "urn:repro:constraint:networkdelay"

_CLAUSE_RE = re.compile(
    r"^\s*networkdelay\s+(?P<op>[A-Za-z]+)\s+(?P<value>\d+(?:\.\d+)?)\s*$"
)


@dataclass(frozen=True)
class NetworkDelayCap:
    """A hard bound on acceptable one-way delay, in seconds."""

    op: Operator
    seconds: float

    def satisfied_by(self, delay: float) -> bool:
        return self.op.compare(delay, self.seconds)


def parse_delay_cap(text: str) -> NetworkDelayCap:
    """Parse a ``networkdelay <op> <seconds>`` clause."""
    match = _CLAUSE_RE.match(text)
    if match is None:
        raise ConstraintSyntaxError(f"malformed networkdelay clause: {text!r}")
    return NetworkDelayCap(
        op=Operator.from_symbol(match.group("op")),
        seconds=float(match.group("value")),
    )


class NetworkAwareResolver:
    """Decorate a resolver with estimated-access-time ranking."""

    def __init__(
        self,
        base: BindingResolver,
        transport: SimTransport,
        *,
        load_status: LoadStatus | None = None,
        load_weight: float = 0.0,
    ) -> None:
        self.base = base
        self.transport = transport
        self.load_status = load_status
        #: seconds of estimated queueing delay per unit of load average
        self.load_weight = load_weight

    def estimated_access_time(self, binding: ServiceBinding) -> float:
        if not binding.access_uri:
            return float("inf")
        delay = self.transport.estimated_delay(binding.access_uri)
        if self.load_status is not None and self.load_weight > 0 and binding.host:
            sample = self.load_status.current_sample(binding.host)
            if sample is not None:
                delay += self.load_weight * sample.load
        return delay

    def resolve(
        self, service: Service, bindings: Sequence[ServiceBinding]
    ) -> list[ServiceBinding]:
        resolved = self.base.resolve(service, bindings)
        cap_text = service.slot_value(NETWORK_DELAY_SLOT)
        cap = parse_delay_cap(cap_text) if cap_text else None
        scored = [(self.estimated_access_time(b), i, b) for i, b in enumerate(resolved)]
        if cap is not None:
            kept = [(d, i, b) for d, i, b in scored if cap.satisfied_by(d)]
            # like the balancer, never render the service undiscoverable
            scored = kept or scored
        scored.sort(key=lambda entry: (entry[0], entry[1]))
        return [b for _, _, b in scored]
