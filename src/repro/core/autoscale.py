"""Automatic service replication — the Keidl-style elasticity extension.

Thesis §1.4 summarizes Keidl et al. [11]: a dispatcher monitors service
hosts and "in case all service hosts are experiencing heavy load, the
dispatcher generates a new service instance on a service host with low
load."  The thesis scheme itself never grows the deployment; this extension
composes the two ideas on top of the reproduction's registry:

* the :class:`AutoScaler` watches the NodeState table after every TimeHits
  sweep;
* when **every** host currently deployed for a watched service has violated
  the service's constraints for ``trigger_sweeps`` consecutive sweeps, it
  picks the least-loaded *spare* host (monitored but not yet deploying the
  service), deploys the service there (cluster-side), and publishes a new
  ServiceBinding for it (registry-side);
* scale-ups respect ``max_instances`` and a per-service cooldown so one
  burst cannot exhaust the spare pool.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.load_status import LoadStatus
from repro.core.service_constraint import ServiceConstraint
from repro.registry.server import RegistryServer
from repro.rim import Service, ServiceBinding
from repro.rim.service import host_of_uri
from repro.security.authn import Session
from repro.sim.cluster import Cluster
from repro.util.errors import InvalidRequestError


@dataclass(frozen=True)
class ScaleEvent:
    """One scale-up decision."""

    time: float
    service_id: str
    host: str
    access_uri: str
    reason: str


@dataclass
class WatchedService:
    service_id: str
    uri_template: str  # e.g. "http://{host}:8080/Adder/addService"
    max_instances: int
    overloaded_sweeps: int = 0
    last_scale_time: float | None = None


class AutoScaler:
    """Grows a service's deployment when its whole pool is overloaded."""

    def __init__(
        self,
        registry: RegistryServer,
        cluster: Cluster,
        session: Session,
        *,
        load_status: LoadStatus,
        trigger_sweeps: int = 2,
        cooldown: float = 60.0,
    ) -> None:
        self.registry = registry
        self.cluster = cluster
        self.session = session
        self.load_status = load_status
        self.service_constraint = ServiceConstraint(registry.clock)
        self.trigger_sweeps = trigger_sweeps
        self.cooldown = cooldown
        self._watched: dict[str, WatchedService] = {}
        self.events: list[ScaleEvent] = []

    # -- configuration ----------------------------------------------------------

    def watch(
        self, service_id: str, *, uri_template: str, max_instances: int | None = None
    ) -> None:
        if "{host}" not in uri_template:
            raise InvalidRequestError("uri_template must contain a {host} placeholder")
        self._watched[service_id] = WatchedService(
            service_id=service_id,
            uri_template=uri_template,
            max_instances=max_instances or len(self.cluster),
        )

    # -- the sweep hook ------------------------------------------------------------

    def on_sweep(self) -> list[ScaleEvent]:
        """Evaluate every watched service; returns scale events fired now."""
        fired: list[ScaleEvent] = []
        for watched in self._watched.values():
            event = self._evaluate(watched)
            if event is not None:
                fired.append(event)
        return fired

    def _evaluate(self, watched: WatchedService) -> ScaleEvent | None:
        service = self.registry.daos.services.get(watched.service_id)
        if service is None:
            return None
        check = self.service_constraint.check(service)
        if not check.active:
            watched.overloaded_sweeps = 0
            return None
        assert check.constraints is not None
        deployed = self._deployed_hosts(service)
        if not deployed:
            return None
        satisfying = self.load_status.satisfying_hosts(deployed, check.constraints)
        if satisfying:
            watched.overloaded_sweeps = 0
            return None
        watched.overloaded_sweeps += 1
        if watched.overloaded_sweeps < self.trigger_sweeps:
            return None
        now = self.registry.clock.now()
        if (
            watched.last_scale_time is not None
            and now - watched.last_scale_time < self.cooldown
        ):
            return None
        if len(deployed) >= watched.max_instances:
            return None
        spare = self._pick_spare(deployed, check.constraints)
        if spare is None:
            return None
        event = self._scale_up(watched, service, spare, now, pool_size=len(deployed))
        watched.overloaded_sweeps = 0
        watched.last_scale_time = now
        return event

    # -- helpers -----------------------------------------------------------------------

    def _deployed_hosts(self, service: Service) -> list[str]:
        hosts: list[str] = []
        for binding in self.registry.daos.service_bindings.for_service(service):
            if binding.access_uri:
                host = host_of_uri(binding.access_uri)
                if host not in hosts:
                    hosts.append(host)
        return hosts

    def _pick_spare(self, deployed: list[str], constraints) -> str | None:
        """Least-loaded monitored host not yet deploying the service."""
        candidates = [
            host for host in self.cluster.host_names() if host not in deployed
        ]
        ranked = self.load_status.rank(candidates, constraints)
        if ranked:
            return ranked[0]
        # no spare *satisfies* the constraints; Keidl's rule says "a host
        # with low load" — take the least-loaded monitored spare if any
        monitored = [
            h for h in candidates if self.load_status.current_sample(h) is not None
        ]
        if not monitored:
            return None
        return min(
            monitored, key=lambda h: self.load_status.current_sample(h).load
        )

    def _scale_up(
        self,
        watched: WatchedService,
        service: Service,
        host: str,
        now: float,
        *,
        pool_size: int,
    ) -> ScaleEvent:
        access_uri = watched.uri_template.format(host=host)
        binding = ServiceBinding(
            self.registry.ids.new_id(), service=service.id, access_uri=access_uri
        )
        self.registry.lcm.submit_objects(self.session, [binding])
        self.cluster.deploy_service(service.name.value, [host])
        event = ScaleEvent(
            time=now,
            service_id=service.id,
            host=host,
            access_uri=access_uri,
            reason=f"all {pool_size} deployed hosts violated constraints",
        )
        self.events.append(event)
        return event


def attach_autoscaler(
    balancer,
    registry: RegistryServer,
    cluster: Cluster,
    session: Session,
    *,
    trigger_sweeps: int = 2,
    cooldown: float = 60.0,
) -> AutoScaler:
    """Wire an AutoScaler to run after every TimeHits sweep."""
    scaler = AutoScaler(
        registry,
        cluster,
        session,
        load_status=balancer.load_status,
        trigger_sweeps=trigger_sweeps,
        cooldown=cooldown,
    )
    balancer.monitor.post_sweep_hooks.append(scaler.on_sweep)
    return scaler
