"""ServiceConstraint — constraint validation at discovery time (thesis §3.2).

Figure 3.5's collaboration: *"A ServiceConstraint instance validates Web
Service constraints that are part of the service description field …
ServiceConstraint returns false if no valid service constraints are
specified or if the time constraint is not satisfied."*

:meth:`ServiceConstraint.check` reproduces exactly that contract: it parses
the service description leniently (malformed → treated as absent) and
returns the active :class:`ConstraintSet` only when performance constraints
exist *and* the time window (if any) contains "now"; otherwise ``None``,
which tells ServiceDAO to fall back to vanilla behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.constraints import ConstraintSet, parse_constraints
from repro.rim import Service
from repro.util.clock import Clock


@dataclass(frozen=True)
class ConstraintCheck:
    """Outcome of validating one service's constraints at query time."""

    constraints: ConstraintSet | None
    #: parsed constraints were found in the description
    present: bool
    #: the time window (if any) contains the query time
    time_satisfied: bool

    @property
    def active(self) -> bool:
        """True when performance filtering should happen (the thesis' True path)."""
        return (
            self.present
            and self.time_satisfied
            and self.constraints is not None
            and self.constraints.has_performance_constraints()
        )


class ServiceConstraint:
    """Validates a service's embedded constraints against the current time."""

    def __init__(self, clock: Clock) -> None:
        self.clock = clock

    def check(self, service: Service) -> ConstraintCheck:
        constraints = parse_constraints(service.description.value)
        if constraints is None:
            return ConstraintCheck(constraints=None, present=False, time_satisfied=True)
        time_ok = constraints.time_satisfied(self.clock.minutes_of_day())
        return ConstraintCheck(
            constraints=constraints, present=True, time_satisfied=time_ok
        )

    def validate(self, service: Service) -> bool:
        """The thesis' boolean contract: constraints valid *and* time satisfied."""
        return self.check(service).active
