"""ServiceConstraint — constraint validation at discovery time (thesis §3.2).

Figure 3.5's collaboration: *"A ServiceConstraint instance validates Web
Service constraints that are part of the service description field …
ServiceConstraint returns false if no valid service constraints are
specified or if the time constraint is not satisfied."*

:meth:`ServiceConstraint.check` reproduces exactly that contract: it parses
the service description leniently (malformed → treated as absent) and
returns the active :class:`ConstraintSet` only when performance constraints
exist *and* the time window (if any) contains "now"; otherwise ``None``,
which tells ServiceDAO to fall back to vanilla behaviour.

Fast path: parses are memoized per service id, keyed on the description
content (hash + equality), so steady-state discovery does **zero** XML
parsing.  The cache is self-validating — a republished description never
serves a stale parse — and :meth:`ServiceConstraint.invalidate` additionally
hooks into the datastore's write listeners (wired by
:func:`repro.core.balancer.attach_load_balancer`) so entries for rewritten
or deleted services are evicted eagerly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.constraints import ConstraintSet, parse_constraints
from repro.rim import Service
from repro.util.clock import Clock


@dataclass(frozen=True)
class ConstraintCheck:
    """Outcome of validating one service's constraints at query time."""

    constraints: ConstraintSet | None
    #: parsed constraints were found in the description
    present: bool
    #: the time window (if any) contains the query time
    time_satisfied: bool

    @property
    def active(self) -> bool:
        """True when performance filtering should happen (the thesis' True path)."""
        return (
            self.present
            and self.time_satisfied
            and self.constraints is not None
            and self.constraints.has_performance_constraints()
        )


class ServiceConstraint:
    """Validates a service's embedded constraints against the current time.

    Thread-safe without locks: cache entries are *self-validating* — each
    stores the description (hash + text) it was parsed from and a hit
    requires content equality, so a fill racing an eviction can at worst
    re-serve a parse of the exact same text or force a re-parse, never a
    stale answer.  Wholesale eviction swap-publishes a fresh map.  The
    hit/miss counters are plain ``+=`` (observability, near-exact).
    """

    def __init__(self, clock: Clock, *, cache: bool = True) -> None:
        self.clock = clock
        self.cache_enabled = cache
        #: service id → (description hash, description, parsed constraints)
        self._cache: dict[str, tuple[int, str, ConstraintSet | None]] = {}
        self.cache_hits = 0
        self.cache_misses = 0

    # -- cache ---------------------------------------------------------------

    def constraints_of(self, service: Service) -> ConstraintSet | None:
        """The service's parsed constraint block, memoized by content."""
        if not self.cache_enabled:
            return parse_constraints(service.description.value)
        description = service.description.value
        description_hash = hash(description)
        cached = self._cache.get(service.id)
        if (
            cached is not None
            and cached[0] == description_hash
            and cached[1] == description
        ):
            self.cache_hits += 1
            return cached[2]
        self.cache_misses += 1
        constraints = parse_constraints(description)
        self._cache[service.id] = (description_hash, description, constraints)
        return constraints

    def cache_stats(self) -> dict[str, int]:
        """Parse-cache counters (the telemetry surface)."""
        return {
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "entries": len(self._cache),
        }

    def invalidate(self, object_id: str | None = None) -> None:
        """Drop one service's cached parse (or all, with ``None``)."""
        if object_id is None:
            self._cache = {}
        else:
            self._cache.pop(object_id, None)

    def on_store_write(self, type_name: str | None, object_id: str | None) -> None:
        """Datastore write-listener adapter: evict on Service writes/rollback."""
        if type_name is None or type_name == "Service":
            self.invalidate(object_id)

    # -- validation ----------------------------------------------------------

    def check(self, service: Service) -> ConstraintCheck:
        constraints = self.constraints_of(service)
        if constraints is None:
            return ConstraintCheck(constraints=None, present=False, time_satisfied=True)
        time_ok = constraints.time_satisfied(self.clock.minutes_of_day())
        return ConstraintCheck(
            constraints=constraints, present=True, time_satisfied=time_ok
        )

    def validate(self, service: Service) -> bool:
        """The thesis' boolean contract: constraints valid *and* time satisfied."""
        return self.check(service).active
