"""The paper's primary contribution: constraint-based registry load balancing.

Reproduces thesis Chapter 3's scheme end to end:

* the **constraint language** embedded in service descriptions
  (:mod:`~repro.core.constraints`);
* **ServiceConstraint** — discovery-time validation including the
  time-of-day window (:mod:`~repro.core.service_constraint`);
* **LoadStatus** — NodeState lookup and load-ranked host selection
  (:mod:`~repro.core.load_status`);
* **TimeHits** — the periodic NodeStatus collector, default 25 s
  (:mod:`~repro.core.monitor`);
* **ConstraintBindingResolver** / :func:`attach_load_balancer` — the
  modified ServiceDAO discovery path (:mod:`~repro.core.balancer`);
* the §5.2 future-work **network-delay ranking** extension
  (:mod:`~repro.core.netdelay`).
"""

from repro.core.autoscale import AutoScaler, ScaleEvent, attach_autoscaler
from repro.core.balancer import (
    BalanceMode,
    ConstraintBindingResolver,
    LoadBalancer,
    attach_load_balancer,
)
from repro.core.constraints import (
    ConstraintSet,
    Operator,
    ScalarConstraint,
    TimeWindow,
    parse_constraint_block,
    parse_constraints,
)
from repro.core.load_status import LoadStatus
from repro.core.monitor import DEFAULT_PERIOD, TimeHits
from repro.core.netdelay import (
    NETWORK_DELAY_SLOT,
    NetworkAwareResolver,
    NetworkDelayCap,
    parse_delay_cap,
)
from repro.core.service_constraint import ConstraintCheck, ServiceConstraint

__all__ = [
    "AutoScaler",
    "ScaleEvent",
    "attach_autoscaler",
    "BalanceMode",
    "ConstraintBindingResolver",
    "LoadBalancer",
    "attach_load_balancer",
    "ConstraintSet",
    "Operator",
    "ScalarConstraint",
    "TimeWindow",
    "parse_constraint_block",
    "parse_constraints",
    "LoadStatus",
    "DEFAULT_PERIOD",
    "TimeHits",
    "NETWORK_DELAY_SLOT",
    "NetworkAwareResolver",
    "NetworkDelayCap",
    "parse_delay_cap",
    "ConstraintCheck",
    "ServiceConstraint",
]
