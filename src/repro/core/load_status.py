"""LoadStatus — NodeState lookup and host ranking (thesis §3.2, Figure 3.5).

*"Class LoadStatus is responsible for identifying hosts that deploy the Web
Service and satisfy the performance constraints.  This is done by querying
the NodeState table in the database for hosts that satisfy the
constraints."*

:meth:`LoadStatus.satisfying_hosts` is that query; :meth:`rank` additionally
orders the satisfying hosts by ascending load so the *first* access URI a
client takes points at the currently least-loaded satisfying host — the
"hosts that currently provide optimal service conditions are given
preference" ordering.

Staleness: samples older than ``max_age`` (when configured) are treated as
missing; hosts without a fresh sample are *not* considered satisfying —
an unmonitored host cannot be certified against the constraints.
"""

from __future__ import annotations

from repro.core.constraints import ConstraintSet
from repro.persistence.nodestate import NodeSample, NodeStateStore
from repro.util.clock import Clock


class LoadStatus:
    """Constraint evaluation against the NodeState monitoring table.

    Safe to run concurrently with request dispatch and the monitoring
    sweep: every ranking works over a local per-query snapshot of samples
    (each fetched once from the swap-published NodeState cache), so a
    sweep landing mid-rank can never mix two hosts' generations within one
    decision.  The ``rankings``/``stale_samples`` counters are plain ``+=``
    (observability, near-exact under contention).
    """

    def __init__(
        self,
        node_state: NodeStateStore,
        *,
        clock: Clock,
        max_age: float | None = None,
    ) -> None:
        self.node_state = node_state
        self.clock = clock
        self.max_age = max_age
        self.rankings = 0
        self.stale_samples = 0
        #: optional telemetry tracer; spans each ranking when enabled
        self.tracer = None
        #: optional Telemetry facade: with its history store enabled, each
        #: ranking records per-host eligibility *transitions* (the flag
        #: series flap detection reads); with its log enabled, each ranking
        #: decision emits one structured record
        self.telemetry = None

    # -- sample access -----------------------------------------------------------

    def current_sample(self, host: str) -> NodeSample | None:
        """The host's sample, or None when absent/stale."""
        sample = self.node_state.get(host)
        if sample is None:
            return None
        if self.max_age is not None and self.clock.now() - sample.updated > self.max_age:
            self.stale_samples += 1
            return None
        return sample

    # -- constraint evaluation ------------------------------------------------------

    def host_satisfies(self, host: str, constraints: ConstraintSet) -> bool:
        sample = self.current_sample(host)
        if sample is None:
            return False
        return constraints.satisfied_by(sample)

    def snapshot(self, hosts: list[str]) -> dict[str, NodeSample | None]:
        """One fresh sample per distinct host — the per-query NodeState read.

        Each host's sample is fetched (and staleness-checked) exactly once,
        so ranking and satisfaction both evaluate one consistent snapshot.
        """
        samples: dict[str, NodeSample | None] = {}
        for host in hosts:
            if host not in samples:
                samples[host] = self.current_sample(host)
        return samples

    def satisfying_hosts(
        self, hosts: list[str], constraints: ConstraintSet
    ) -> list[str]:
        """The subset of *hosts* whose current sample satisfies *constraints*."""
        samples = self.snapshot(hosts)
        return [
            h
            for h in hosts
            if (sample := samples[h]) is not None and constraints.satisfied_by(sample)
        ]

    def rank(self, hosts: list[str], constraints: ConstraintSet) -> list[str]:
        """Satisfying hosts ordered by ascending current load.

        Ties (equal load) keep the input (publisher) order, so the ordering
        is deterministic.  O(n log n): one sample fetch per distinct host and
        a position map instead of repeated ``hosts.index`` scans.
        """
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            with tracer.span("loadstatus.rank", hosts=len(hosts)) as span:
                ranked = self._rank(hosts, constraints)
                span.tags["satisfying"] = len(ranked)
            return ranked
        return self._rank(hosts, constraints)

    def _rank(self, hosts: list[str], constraints: ConstraintSet) -> list[str]:
        self.rankings += 1
        samples = self.snapshot(hosts)
        position: dict[str, int] = {}
        for index, host in enumerate(hosts):
            position.setdefault(host, index)
        satisfying = [
            h
            for h in hosts
            if (sample := samples[h]) is not None and constraints.satisfied_by(sample)
        ]
        ranked = sorted(satisfying, key=lambda h: (samples[h].load, position[h]))
        telemetry = self.telemetry
        if telemetry is not None:
            if telemetry.history.enabled:
                eligible = set(satisfying)
                for host in position:
                    telemetry.history.record_flag(f"eligible.{host}", host in eligible)
            if telemetry.log.enabled:
                telemetry.log.emit(
                    "loadstatus.rank",
                    hosts=len(position),
                    satisfying=len(satisfying),
                    preferred=ranked[0] if ranked else None,
                )
        return ranked

    def load_status_stats(self) -> dict[str, int]:
        """Ranking/staleness counters (the telemetry surface)."""
        return {"rankings": self.rankings, "stale_samples": self.stale_samples}
