"""ConstraintBindingResolver — the modified ServiceDAO discovery path.

This is the thesis' actual change to freebXML (Figures 3.5/3.6): when a
service is discovered, ServiceDAO populates the ServiceBindingDAO results
through this resolver instead of returning publisher order:

1. **ServiceConstraint** parses/validates constraints from the description
   and checks the time-of-day window.  No valid constraints, or the window
   not satisfied → vanilla behaviour (all bindings, publisher order) —
   keeping the scheme transparent to unconstrained services.
2. **LoadStatus** queries the NodeState table for hosts satisfying the
   performance constraints, ranked by ascending load.
3. The returned binding list puts satisfying hosts first (best host first);
   in ``filter`` mode non-satisfying hosts are dropped entirely, in the
   default ``prefer`` mode they trail the list (the thesis' "hosts that
   currently provide optimal service conditions are given preference").

``attach_load_balancer`` wires the whole scheme onto a RegistryServer: it
installs this resolver on the ServiceDAO and builds the TimeHits collector —
the one-call equivalent of deploying the thesis' modified freebXML build.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.core.load_status import LoadStatus
from repro.core.monitor import DEFAULT_PERIOD, TimeHits
from repro.core.service_constraint import ServiceConstraint
from repro.rim import Service, ServiceBinding
from repro.sim.engine import SimEngine
from repro.soap.transport import SimTransport
from repro.util.clock import Clock

if TYPE_CHECKING:  # pragma: no cover
    from repro.registry.server import RegistryServer


class BalanceMode(enum.Enum):
    """How non-satisfying hosts are treated."""

    #: satisfying hosts first (ranked), others after in publisher order
    PREFER = "prefer"
    #: only satisfying hosts are returned; empty result falls back to all
    FILTER = "filter"


class ConstraintBindingResolver:
    """The load-balanced implementation of the ServiceDAO binding resolver."""

    def __init__(
        self,
        service_constraint: ServiceConstraint,
        load_status: LoadStatus,
        *,
        mode: BalanceMode = BalanceMode.PREFER,
    ) -> None:
        self.service_constraint = service_constraint
        self.load_status = load_status
        self.mode = mode
        self.resolutions = 0
        self.balanced_resolutions = 0

    def fingerprint(self) -> tuple:
        """Resolution-cache validity token (see ServiceDAO.resolve_access_uris).

        A balanced resolution depends, beyond the service and its bindings,
        on the NodeState samples, the minute of day (time windows), and —
        when staleness filtering is on — the clock itself (quantized to one
        second, so a host aging past ``max_age`` is dropped within 1s).
        """
        staleness = (
            0 if self.load_status.max_age is None else int(self.load_status.clock.now())
        )
        return (
            self.load_status.node_state.version,
            self.service_constraint.clock.minutes_of_day(),
            staleness,
        )

    def resolve(
        self, service: Service, bindings: Sequence[ServiceBinding]
    ) -> list[ServiceBinding]:
        self.resolutions += 1
        check = self.service_constraint.check(service)
        if not check.active:
            # no valid constraints / time window unsatisfied → vanilla order
            return list(bindings)
        assert check.constraints is not None
        self.balanced_resolutions += 1
        # one pass, one (memoized) host parse per binding
        hosts: list[str] = []
        by_host: dict[str, list[ServiceBinding]] = {}
        for binding in bindings:
            host = binding.host
            if host is not None:
                hosts.append(host)
                by_host.setdefault(host, []).append(binding)
        ranked_hosts = self.load_status.rank(hosts, check.constraints)
        satisfying: list[ServiceBinding] = []
        for host in ranked_hosts:
            satisfying.extend(by_host.pop(host, ()))
        if self.mode is BalanceMode.FILTER:
            if satisfying:
                return satisfying
            # per the thesis' "preference" language a fully-overloaded pool
            # still answers — fall back to publisher order rather than
            # rendering the service undiscoverable.
            return list(bindings)
        satisfying_ids = {b.id for b in satisfying}
        rest = [b for b in bindings if b.id not in satisfying_ids]
        return satisfying + rest


@dataclass
class LoadBalancer:
    """Handle on an attached load-balancing scheme."""

    resolver: ConstraintBindingResolver
    load_status: LoadStatus
    service_constraint: ServiceConstraint
    monitor: TimeHits

    def detach(self, registry: "RegistryServer") -> None:
        """Restore vanilla discovery, stop monitoring, unmount telemetry."""
        from repro.persistence.dao import DefaultBindingResolver

        registry.daos.services.set_resolver(DefaultBindingResolver())
        self.monitor.stop()
        registry.store.remove_write_listener(self.service_constraint.on_store_write)
        telemetry = getattr(registry, "telemetry", None)
        if telemetry is not None:
            for source in ("constraint_cache", "collector", "load_status", "transport"):
                telemetry.unregister_source(source)
            telemetry.unregister_health_check("node_staleness")


def attach_load_balancer(
    registry: "RegistryServer",
    transport: SimTransport,
    engine: SimEngine,
    *,
    clock: Clock | None = None,
    period: float = DEFAULT_PERIOD,
    mode: BalanceMode = BalanceMode.PREFER,
    max_sample_age: float | None = None,
    start_monitor: bool = True,
) -> LoadBalancer:
    """Install the thesis' load-balancing scheme on a registry.

    ``max_sample_age`` defaults to 4× the monitoring period: a host missing
    four consecutive sweeps is treated as unmonitored.
    """
    clock = clock or registry.clock
    if max_sample_age is None:
        max_sample_age = registry.config.nodestate_max_age
    if max_sample_age is None:
        max_sample_age = 4.0 * period
    service_constraint = ServiceConstraint(clock)
    # evict cached constraint parses when a Service is rewritten or deleted
    # (the cache is content-validated too, so this is eager hygiene, not the
    # sole correctness mechanism)
    registry.store.add_write_listener(service_constraint.on_store_write)
    load_status = LoadStatus(
        registry.node_state, clock=clock, max_age=max_sample_age
    )
    resolver = ConstraintBindingResolver(service_constraint, load_status, mode=mode)
    registry.daos.services.set_resolver(resolver)
    monitor = TimeHits(registry, transport, engine, period=period)
    telemetry = getattr(registry, "telemetry", None)
    if telemetry is not None:
        # mount the scheme's stats surfaces + trace hooks on the registry's
        # telemetry facade (/metrics and telemetry_snapshot() pick them up)
        from repro.obs.adapters import (
            constraint_cache_collector,
            load_status_collector,
            monitor_collector,
            transport_collector,
        )

        load_status.tracer = telemetry.tracer
        load_status.telemetry = telemetry
        transport.tracer = telemetry.tracer
        telemetry.register_source(
            "constraint_cache",
            service_constraint.cache_stats,
            collector=constraint_cache_collector(service_constraint),
        )
        telemetry.register_source(
            "collector",
            monitor.collector_stats,
            collector=monitor_collector(monitor),
        )
        telemetry.register_source(
            "load_status",
            load_status.load_status_stats,
            collector=load_status_collector(load_status, resolver),
        )
        telemetry.register_source(
            "transport",
            transport.transport_stats,
            collector=transport_collector(transport),
        )
    if start_monitor:
        monitor.start()
    return LoadBalancer(
        resolver=resolver,
        load_status=load_status,
        service_constraint=service_constraint,
        monitor=monitor,
    )
