"""ASCII table / series printers for the benchmark harness.

Every bench regenerates a thesis table or figure as rows; these helpers
render them uniformly so EXPERIMENTS.md can quote bench output verbatim.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence


def format_table(
    rows: Sequence[dict[str, Any]],
    *,
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render dict rows as a fixed-width ASCII table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    columns = list(columns) if columns else list(rows[0].keys())
    widths = {c: len(str(c)) for c in columns}
    rendered: list[list[str]] = []
    for row in rows:
        cells = ["" if row.get(c) is None else str(row.get(c)) for c in columns]
        rendered.append(cells)
        for column, cell in zip(columns, cells):
            widths[column] = max(widths[column], len(cell))
    sep = "+" + "+".join("-" * (widths[c] + 2) for c in columns) + "+"
    header = "|" + "|".join(f" {c:<{widths[c]}} " for c in columns) + "|"
    lines = []
    if title:
        lines.append(title)
    lines += [sep, header, sep]
    for cells in rendered:
        lines.append(
            "|" + "|".join(f" {cell:<{widths[c]}} " for c, cell in zip(columns, cells)) + "|"
        )
    lines.append(sep)
    return "\n".join(lines)


def format_series(
    points: Iterable[tuple[Any, Any]],
    *,
    x_label: str = "x",
    y_label: str = "y",
    title: str | None = None,
    width: int = 40,
) -> str:
    """Render an (x, y) series as a labelled ASCII bar chart (figure stand-in)."""
    pts = list(points)
    if not pts:
        return (title + "\n" if title else "") + "(no points)"
    values = [float(y) for _, y in pts]
    peak = max(values) if max(values) > 0 else 1.0
    x_width = max(len(str(x)) for x, _ in pts + [(x_label, 0)])
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{x_label:<{x_width}} | {y_label}")
    for (x, y), value in zip(pts, values):
        bar = "#" * max(0, round(width * value / peak))
        lines.append(f"{str(x):<{x_width}} | {float(y):<10.4g} {bar}")
    return "\n".join(lines)


def print_table(rows, **kwargs) -> None:  # pragma: no cover - thin wrapper
    print(format_table(rows, **kwargs))


def print_series(points, **kwargs) -> None:  # pragma: no cover - thin wrapper
    print(format_series(points, **kwargs))
