"""Benchmark harness helpers (table/series rendering)."""

from repro.bench.tables import format_series, format_table, print_series, print_table

__all__ = ["format_series", "format_table", "print_series", "print_table"]
