"""SOAP-style message envelopes and faults.

The freebXML registry exposes SOAP 1.1-with-attachments bindings (thesis
§2.2.3); clients wrap every registry protocol request in an envelope whose
header carries the session credentials.  This simulation keeps the envelope
as a structured object (header dict + body payload) rather than angle
brackets — serialization to XML-ish dicts lives in
:mod:`repro.soap.serializer` and exists so the transport moves *data*, not
live Python objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.util.errors import RegistryError


@dataclass
class SoapEnvelope:
    """One SOAP message: headers + a body payload."""

    body: Any
    headers: dict[str, str] = field(default_factory=dict)

    #: header key carrying the authenticated session token
    SESSION_HEADER = "urn:repro:session-token"

    #: header key carrying the W3C-style trace context across the hop
    TRACEPARENT_HEADER = "traceparent"

    #: header key carrying the home URL of the cluster member that forwarded
    #: this request (shard routing); a receiving member serves it locally —
    #: forwarding is single-hop, never transitive
    FORWARDED_HEADER = "urn:repro:forwarded-by"

    @classmethod
    def with_session(
        cls,
        body: Any,
        session_token: str | None,
        *,
        traceparent: str | None = None,
    ) -> "SoapEnvelope":
        headers = {}
        if session_token:
            headers[cls.SESSION_HEADER] = session_token
        if traceparent:
            headers[cls.TRACEPARENT_HEADER] = traceparent
        return cls(body=body, headers=headers)

    @property
    def session_token(self) -> str | None:
        return self.headers.get(self.SESSION_HEADER)

    @property
    def traceparent(self) -> str | None:
        return self.headers.get(self.TRACEPARENT_HEADER)

    @property
    def forwarded_by(self) -> str | None:
        return self.headers.get(self.FORWARDED_HEADER)


@dataclass
class SoapFault:
    """A SOAP fault: code + message, carrying the registry error code."""

    fault_code: str
    fault_string: str
    detail: str | None = None

    @classmethod
    def from_error(cls, error: RegistryError) -> "SoapFault":
        return cls(
            fault_code=error.code,
            fault_string=str(error),
            detail=error.detail,
        )

    def raise_(self) -> None:
        """Re-raise this fault on the client side as the typed RegistryError.

        The fault code URN selects the original error subclass, so
        ``error.code`` survives serialization → re-raise unchanged on every
        protocol edge.
        """
        raise RegistryError.from_fault(self.fault_code, self.fault_string, self.detail)
