"""Simulated SOAP/HTTP messaging substrate.

Envelopes, ebRS protocol messages, full RIM object (de)serialization, a
URI-routed transport with latency and fault injection, and the two protocol
bindings freebXML exposes (SOAP for both service interfaces, HTTP GET for
read-only query access).
"""

from repro.soap.binding import SOAP_PATH, HttpGetBinding, SoapRegistryBinding
from repro.soap.envelope import SoapEnvelope, SoapFault
from repro.soap.messages import (
    AddSlotsRequest,
    AdhocQueryRequest,
    ApproveObjectsRequest,
    DeprecateObjectsRequest,
    GetRegistryObjectRequest,
    GetServiceBindingsRequest,
    RegistryResponse,
    RemoveObjectsRequest,
    RemoveSlotsRequest,
    SubmitObjectsRequest,
    UndeprecateObjectsRequest,
    UpdateObjectsRequest,
)
from repro.soap.serializer import deserialize, serialize
from repro.soap.transport import RetryPolicy, SimTransport, TransportStats
from repro.soap.xml_binding import envelope_from_xml, envelope_to_xml

__all__ = [
    "SOAP_PATH",
    "HttpGetBinding",
    "SoapRegistryBinding",
    "SoapEnvelope",
    "SoapFault",
    "AddSlotsRequest",
    "AdhocQueryRequest",
    "ApproveObjectsRequest",
    "DeprecateObjectsRequest",
    "GetRegistryObjectRequest",
    "GetServiceBindingsRequest",
    "RegistryResponse",
    "RemoveObjectsRequest",
    "RemoveSlotsRequest",
    "SubmitObjectsRequest",
    "UndeprecateObjectsRequest",
    "UpdateObjectsRequest",
    "deserialize",
    "serialize",
    "RetryPolicy",
    "SimTransport",
    "TransportStats",
    "envelope_from_xml",
    "envelope_to_xml",
]
