"""Literal XML on the wire: envelope ↔ SOAP 1.1 XML text.

The in-memory envelopes move structured dicts; this module renders them as
actual ``<soap:Envelope>`` documents and parses them back, so a wire capture
of the simulated traffic looks like what freebXML's SAAJ layer produced.
Round-tripping is exact for every protocol message type.
"""

from __future__ import annotations

import json
import xml.etree.ElementTree as ET
from typing import Any

from repro.soap.envelope import SoapEnvelope, SoapFault
from repro.soap.messages import (
    AddSlotsRequest,
    AdhocQueryRequest,
    ApproveObjectsRequest,
    DeprecateObjectsRequest,
    GetRegistryObjectRequest,
    GetServiceBindingsRequest,
    RegistryResponse,
    RemoveObjectsRequest,
    RemoveSlotsRequest,
    SubmitObjectsRequest,
    UndeprecateObjectsRequest,
    UpdateObjectsRequest,
)
from repro.util.errors import InvalidRequestError
from repro.util.xmlutil import parse_xml

SOAP_NS = "http://schemas.xmlsoap.org/soap/envelope/"
RS_NS = "urn:oasis:names:tc:ebxml-regrep:xsd:rs:3.0"

#: message classes by their XML element name
_MESSAGE_TYPES = {
    cls.__name__: cls
    for cls in (
        SubmitObjectsRequest,
        UpdateObjectsRequest,
        ApproveObjectsRequest,
        DeprecateObjectsRequest,
        UndeprecateObjectsRequest,
        RemoveObjectsRequest,
        AddSlotsRequest,
        RemoveSlotsRequest,
        AdhocQueryRequest,
        GetRegistryObjectRequest,
        GetServiceBindingsRequest,
        RegistryResponse,
    )
}


def _payload_of(message: Any) -> dict:
    """Dataclass fields as a JSON-safe dict."""
    import dataclasses

    return dataclasses.asdict(message)


def envelope_to_xml(envelope: SoapEnvelope) -> str:
    """Render an envelope as a SOAP 1.1 document."""
    body_message = envelope.body
    type_name = type(body_message).__name__
    if type_name not in _MESSAGE_TYPES and not isinstance(body_message, SoapFault):
        raise InvalidRequestError(
            f"cannot render body of type {type_name!r} as SOAP XML"
        )
    root = ET.Element(f"{{{SOAP_NS}}}Envelope")
    header = ET.SubElement(root, f"{{{SOAP_NS}}}Header")
    for key, value in sorted(envelope.headers.items()):
        entry = ET.SubElement(header, f"{{{RS_NS}}}HeaderEntry")
        entry.set("name", key)
        entry.text = value
    body = ET.SubElement(root, f"{{{SOAP_NS}}}Body")
    if isinstance(body_message, SoapFault):
        fault = ET.SubElement(body, f"{{{SOAP_NS}}}Fault")
        ET.SubElement(fault, "faultcode").text = body_message.fault_code
        ET.SubElement(fault, "faultstring").text = body_message.fault_string
        if body_message.detail:
            ET.SubElement(fault, "detail").text = body_message.detail
    else:
        message_el = ET.SubElement(body, f"{{{RS_NS}}}{type_name}")
        # the structured payload travels as canonical JSON inside the
        # message element — the registry protocol's "attachment"
        message_el.text = json.dumps(_payload_of(body_message), sort_keys=True)
    return ET.tostring(root, encoding="unicode")


def envelope_from_xml(text: str) -> SoapEnvelope:
    """Parse a SOAP 1.1 document back into an envelope."""
    root = parse_xml(text, what="SOAP envelope")
    if root.tag != f"{{{SOAP_NS}}}Envelope":
        raise InvalidRequestError("not a SOAP envelope")
    headers: dict[str, str] = {}
    header_el = root.find(f"{{{SOAP_NS}}}Header")
    if header_el is not None:
        for entry in header_el:
            name = entry.get("name")
            if name:
                headers[name] = entry.text or ""
    body_el = root.find(f"{{{SOAP_NS}}}Body")
    if body_el is None or len(body_el) == 0:
        raise InvalidRequestError("SOAP envelope has no body")
    child = body_el[0]
    local = child.tag.rsplit("}", 1)[-1]
    if local == "Fault":
        fault = SoapFault(
            fault_code=(child.findtext("faultcode") or ""),
            fault_string=(child.findtext("faultstring") or ""),
            detail=child.findtext("detail"),
        )
        return SoapEnvelope(body=fault, headers=headers)
    message_cls = _MESSAGE_TYPES.get(local)
    if message_cls is None:
        raise InvalidRequestError(f"unknown SOAP body element: {local!r}")
    payload = json.loads(child.text or "{}")
    return SoapEnvelope(body=message_cls(**payload), headers=headers)
