"""Registry protocol request/response messages (ebRS protocols).

One dataclass per protocol the thesis names (§2.2.3 and Figure 2.4):
SubmitObjectsRequest, UpdateObjectsRequest, ApproveObjectsRequest,
DeprecateObjectsRequest, UndeprecateObjectsRequest, RemoveObjectsRequest,
RelocateObjectsRequest, AddSlotsRequest, RemoveSlotsRequest, plus
AdhocQueryRequest/Response and the generic RegistryResponse wrapper.

Requests reference registry objects as *serialized dicts* (see
:mod:`repro.soap.serializer`) so the transport boundary is a real data
boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.rim import QUERY_LANGUAGE_SQL

SerializedObject = dict[str, Any]


@dataclass(frozen=True)
class SubmitObjectsRequest:
    objects: list[SerializedObject]
    #: optional client-chosen key: a retried request with the same key
    #: replays the recorded result instead of re-running (exactly-once)
    idempotency_key: str | None = None


@dataclass(frozen=True)
class UpdateObjectsRequest:
    objects: list[SerializedObject]
    idempotency_key: str | None = None


@dataclass(frozen=True)
class ApproveObjectsRequest:
    ids: list[str]
    idempotency_key: str | None = None


@dataclass(frozen=True)
class DeprecateObjectsRequest:
    ids: list[str]
    idempotency_key: str | None = None


@dataclass(frozen=True)
class UndeprecateObjectsRequest:
    ids: list[str]
    idempotency_key: str | None = None


@dataclass(frozen=True)
class RemoveObjectsRequest:
    ids: list[str]
    idempotency_key: str | None = None


@dataclass(frozen=True)
class AddSlotsRequest:
    object_id: str
    slots: list[dict[str, Any]]
    idempotency_key: str | None = None


@dataclass(frozen=True)
class RemoveSlotsRequest:
    object_id: str
    names: list[str]
    idempotency_key: str | None = None


@dataclass(frozen=True)
class AdhocQueryRequest:
    query: str
    query_language: str = QUERY_LANGUAGE_SQL
    start_index: int = 0
    max_results: int | None = None


@dataclass(frozen=True)
class GetRegistryObjectRequest:
    object_id: str


@dataclass(frozen=True)
class GetServiceBindingsRequest:
    """Discovery request for a service's (load-balanced) access bindings."""

    service_id: str


@dataclass(frozen=True)
class RegistryResponse:
    """Generic success response: status + result payload."""

    status: str = "Success"
    ids: list[str] = field(default_factory=list)
    rows: list[dict[str, Any]] = field(default_factory=list)
    objects: list[SerializedObject] = field(default_factory=list)
    total_result_count: int | None = None

    STATUS_SUCCESS = "Success"
    STATUS_FAILURE = "Failure"

    @property
    def is_success(self) -> bool:
        return self.status == self.STATUS_SUCCESS
