"""Simulated transport: a routed endpoint table with a latency model.

Replaces the HTTP/SOAP network between registry clients, the registry
server, and the per-host NodeStatus services.  Endpoints register a handler
under their URI; :meth:`SimTransport.request` routes an envelope to the
handler, samples the latency model for the round trip, and returns the
response.  Failures are injectable per endpoint (down hosts), which the
monitoring code must tolerate — the thesis' scheme silently skips
unreachable hosts.

The request path carries a client-side **mini-chain**, symmetric to the
server's kernel pipeline: an optional retry stage (exponential backoff on
:class:`TransportError`, capped by a per-transport retry budget) wraps the
wire attempt, and an accounting stage records every attempt — including
per-endpoint failure attribution — in :class:`TransportStats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.rim.service import host_of_uri
from repro.sim.network import LatencyModel
from repro.util.errors import TransportError

Handler = Callable[[Any], Any]


@dataclass(frozen=True)
class RetryPolicy:
    """Client-side retry stage configuration.

    ``max_attempts`` counts the first attempt too (1 = no retries, the
    parity default).  Backoff is exponential, ``backoff_base * factor**n``
    simulated seconds before retry *n*, capped at ``backoff_cap``; the
    backoff is charged to :attr:`TransportStats.backoff_total` (the
    simulation engine's virtual clock is not advanced, matching how wire
    latency is accounted).  ``budget`` caps the *total* retries the
    transport may spend across its lifetime — once exhausted, failures
    surface immediately (retry-budget admission control, so a dead host
    cannot consume unbounded retry work).
    """

    max_attempts: int = 1
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_cap: float = 1.0
    budget: int | None = None

    def backoff_for(self, retry_index: int) -> float:
        """Simulated backoff delay before the given retry (0-based)."""
        return min(self.backoff_cap, self.backoff_base * self.backoff_factor**retry_index)


@dataclass
class TransportStats:
    """Aggregate transport accounting (request counts, simulated wire time).

    ``per_endpoint`` counts every attempt per URI; ``per_endpoint_failures``
    attributes failed attempts to the endpoint that failed, so a flaky host
    is visible even when totals look healthy.  ``retries`` / ``backoff_total``
    account the client-side retry stage; each retried *request* additionally
    resolves to either ``recovered_after_retry`` (a later attempt succeeded)
    or ``exhausted_retries`` (every retry spent, the failure surfaced) — the
    split that separates a flaky endpoint from a dead one.
    """

    requests: int = 0
    failures: int = 0
    total_latency: float = 0.0
    per_endpoint: dict[str, int] = field(default_factory=dict)
    per_endpoint_failures: dict[str, int] = field(default_factory=dict)
    retries: int = 0
    backoff_total: float = 0.0
    per_endpoint_retries: dict[str, int] = field(default_factory=dict)
    per_endpoint_backoff: dict[str, float] = field(default_factory=dict)
    recovered_after_retry: int = 0
    exhausted_retries: int = 0
    per_endpoint_recovered: dict[str, int] = field(default_factory=dict)
    per_endpoint_exhausted: dict[str, int] = field(default_factory=dict)

    def record(self, uri: str, latency: float, ok: bool) -> None:
        self.requests += 1
        if not ok:
            self.failures += 1
            self.per_endpoint_failures[uri] = self.per_endpoint_failures.get(uri, 0) + 1
        self.total_latency += latency
        self.per_endpoint[uri] = self.per_endpoint.get(uri, 0) + 1

    def record_retry(self, uri: str, backoff: float) -> None:
        """Account one retry (and its backoff) against the endpoint retried."""
        self.retries += 1
        self.backoff_total += backoff
        self.per_endpoint_retries[uri] = self.per_endpoint_retries.get(uri, 0) + 1
        self.per_endpoint_backoff[uri] = self.per_endpoint_backoff.get(uri, 0.0) + backoff

    def record_recovered(self, uri: str) -> None:
        """One retried request that ultimately succeeded (flaky endpoint)."""
        self.recovered_after_retry += 1
        self.per_endpoint_recovered[uri] = self.per_endpoint_recovered.get(uri, 0) + 1

    def record_exhausted(self, uri: str) -> None:
        """One retried request whose retries all failed (dead endpoint)."""
        self.exhausted_retries += 1
        self.per_endpoint_exhausted[uri] = self.per_endpoint_exhausted.get(uri, 0) + 1

    def snapshot(self) -> dict[str, Any]:
        """Deterministic plain-dict view (the telemetry surface)."""
        return {
            "requests": self.requests,
            "failures": self.failures,
            "total_latency_s": self.total_latency,
            "retries": self.retries,
            "backoff_total_s": self.backoff_total,
            "recovered_after_retry": self.recovered_after_retry,
            "exhausted_retries": self.exhausted_retries,
            "per_endpoint": dict(sorted(self.per_endpoint.items())),
            "per_endpoint_failures": dict(sorted(self.per_endpoint_failures.items())),
            "per_endpoint_retries": dict(sorted(self.per_endpoint_retries.items())),
            "per_endpoint_backoff_s": dict(sorted(self.per_endpoint_backoff.items())),
            "per_endpoint_recovered": dict(sorted(self.per_endpoint_recovered.items())),
            "per_endpoint_exhausted": dict(sorted(self.per_endpoint_exhausted.items())),
        }


class SimTransport:
    """URI-routed request/response transport with simulated latency."""

    def __init__(
        self,
        *,
        latency: LatencyModel | None = None,
        client_host: str = "client",
        retry: RetryPolicy | None = None,
    ) -> None:
        self.latency = latency or LatencyModel(default_latency=0.0)
        self.client_host = client_host
        self.retry = retry
        self._endpoints: dict[str, Handler] = {}
        self._down: set[str] = set()
        self.stats = TransportStats()
        #: optional telemetry tracer; spans each wire attempt when enabled
        self.tracer = None

    # -- endpoint management ----------------------------------------------------

    def register_endpoint(self, uri: str, handler: Handler) -> None:
        self._endpoints[uri] = handler

    def unregister_endpoint(self, uri: str) -> None:
        self._endpoints.pop(uri, None)

    def endpoints(self) -> list[str]:
        return sorted(self._endpoints)

    def set_host_down(self, host: str, down: bool = True) -> None:
        """Mark every endpoint on *host* unreachable (fault injection)."""
        if down:
            self._down.add(host)
        else:
            self._down.discard(host)

    def is_host_down(self, host: str) -> bool:
        return host in self._down

    # -- stats accessors ---------------------------------------------------------

    def endpoint_stats(self, uri: str) -> dict[str, int | float]:
        """Attempt/failure/retry accounting for one endpoint URI."""
        return {
            "requests": self.stats.per_endpoint.get(uri, 0),
            "failures": self.stats.per_endpoint_failures.get(uri, 0),
            "retries": self.stats.per_endpoint_retries.get(uri, 0),
            "backoff_s": self.stats.per_endpoint_backoff.get(uri, 0.0),
            "recovered_after_retry": self.stats.per_endpoint_recovered.get(uri, 0),
            "exhausted_retries": self.stats.per_endpoint_exhausted.get(uri, 0),
        }

    def transport_stats(self) -> dict[str, Any]:
        """The full accounting snapshot (the telemetry surface)."""
        snap = self.stats.snapshot()
        snap["retry_budget_remaining"] = self.retry_budget_remaining()
        return snap

    def endpoint_failures(self) -> dict[str, int]:
        """uri → failed attempt count, for every endpoint that ever failed."""
        return dict(self.stats.per_endpoint_failures)

    def retry_budget_remaining(self) -> int | None:
        """Retries left under the policy budget (None = no retry/unbounded)."""
        if self.retry is None or self.retry.budget is None:
            return None
        return max(0, self.retry.budget - self.stats.retries)

    # -- requests -----------------------------------------------------------------

    def request(self, uri: str, payload: Any, *, source: str | None = None) -> Any:
        """Send *payload* to the endpoint at *uri* and return its response.

        Raises :class:`TransportError` for unknown endpoints and down hosts.
        Latency is sampled per attempt and recorded in :attr:`stats` (the
        simulation engine's virtual clock is not advanced — requests are
        instantaneous at event granularity, as in-thread SOAP calls are to
        freebXML's timer).  With a :class:`RetryPolicy` installed, failed
        attempts are retried with exponential backoff until the attempt
        count or the transport-wide retry budget is exhausted.
        """
        policy = self.retry
        attempt = 0
        retried = False
        while True:
            try:
                response = self._traced_attempt(
                    uri, payload, source=source, attempt=attempt
                )
                if retried:
                    self.stats.record_recovered(uri)
                return response
            except TransportError:
                attempt += 1
                if (
                    policy is None
                    or attempt >= policy.max_attempts
                    or (
                        policy.budget is not None
                        and self.stats.retries >= policy.budget
                    )
                ):
                    if retried:
                        self.stats.record_exhausted(uri)
                    raise
                backoff = policy.backoff_for(attempt - 1)
                self.stats.record_retry(uri, backoff)
                retried = True
                tracer = self.tracer
                if tracer is not None and tracer.enabled:
                    tracer.event(
                        "transport.retry", uri=uri, attempt=attempt, backoff_s=backoff
                    )

    def _traced_attempt(
        self, uri: str, payload: Any, *, source: str | None, attempt: int
    ) -> Any:
        """One attempt, wrapped in a ``transport.attempt`` span when tracing."""
        tracer = self.tracer
        if tracer is None or not tracer.enabled:
            return self._attempt(uri, payload, source=source)
        with tracer.span("transport.attempt", uri=uri, attempt=attempt) as span:
            response = self._attempt(uri, payload, source=source)
            span.tags["ok"] = True
            return response

    def _attempt(self, uri: str, payload: Any, *, source: str | None = None) -> Any:
        """One wire attempt: route, sample latency, account."""
        source = source or self.client_host
        target_host = host_of_uri(uri)
        rtt = self.latency.sample(source, target_host) * 2.0
        if target_host in self._down:
            self.stats.record(uri, rtt, ok=False)
            raise TransportError(f"host unreachable: {target_host}")
        handler = self._endpoints.get(uri)
        if handler is None:
            self.stats.record(uri, rtt, ok=False)
            raise TransportError(f"no endpoint registered at {uri}")
        try:
            response = handler(payload)
        except TransportError:
            self.stats.record(uri, rtt, ok=False)
            raise
        self.stats.record(uri, rtt, ok=True)
        return response

    def estimated_delay(self, uri: str, *, source: str | None = None) -> float:
        """Base one-way delay to an endpoint (the §5.2 network-delay metric)."""
        return self.latency.base_latency(source or self.client_host, host_of_uri(uri))
