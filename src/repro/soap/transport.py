"""Simulated transport: a routed endpoint table with a latency model.

Replaces the HTTP/SOAP network between registry clients, the registry
server, and the per-host NodeStatus services.  Endpoints register a handler
under their URI; :meth:`SimTransport.request` routes an envelope to the
handler, samples the latency model for the round trip, and returns the
response.  Failures are injectable per endpoint (down hosts), which the
monitoring code must tolerate — the thesis' scheme silently skips
unreachable hosts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.rim.service import host_of_uri
from repro.sim.network import LatencyModel
from repro.util.errors import TransportError

Handler = Callable[[Any], Any]


@dataclass
class TransportStats:
    """Aggregate transport accounting (request counts, simulated wire time)."""

    requests: int = 0
    failures: int = 0
    total_latency: float = 0.0
    per_endpoint: dict[str, int] = field(default_factory=dict)

    def record(self, uri: str, latency: float, ok: bool) -> None:
        self.requests += 1
        if not ok:
            self.failures += 1
        self.total_latency += latency
        self.per_endpoint[uri] = self.per_endpoint.get(uri, 0) + 1


class SimTransport:
    """URI-routed request/response transport with simulated latency."""

    def __init__(
        self,
        *,
        latency: LatencyModel | None = None,
        client_host: str = "client",
    ) -> None:
        self.latency = latency or LatencyModel(default_latency=0.0)
        self.client_host = client_host
        self._endpoints: dict[str, Handler] = {}
        self._down: set[str] = set()
        self.stats = TransportStats()

    # -- endpoint management ----------------------------------------------------

    def register_endpoint(self, uri: str, handler: Handler) -> None:
        self._endpoints[uri] = handler

    def unregister_endpoint(self, uri: str) -> None:
        self._endpoints.pop(uri, None)

    def endpoints(self) -> list[str]:
        return sorted(self._endpoints)

    def set_host_down(self, host: str, down: bool = True) -> None:
        """Mark every endpoint on *host* unreachable (fault injection)."""
        if down:
            self._down.add(host)
        else:
            self._down.discard(host)

    def is_host_down(self, host: str) -> bool:
        return host in self._down

    # -- requests -----------------------------------------------------------------

    def request(self, uri: str, payload: Any, *, source: str | None = None) -> Any:
        """Send *payload* to the endpoint at *uri* and return its response.

        Raises :class:`TransportError` for unknown endpoints and down hosts.
        Latency is sampled for the round trip and recorded in :attr:`stats`
        (the simulation engine's virtual clock is not advanced — requests
        are instantaneous at event granularity, as in-thread SOAP calls are
        to freebXML's timer).
        """
        source = source or self.client_host
        target_host = host_of_uri(uri)
        rtt = self.latency.sample(source, target_host) * 2.0
        if target_host in self._down:
            self.stats.record(uri, rtt, ok=False)
            raise TransportError(f"host unreachable: {target_host}")
        handler = self._endpoints.get(uri)
        if handler is None:
            self.stats.record(uri, rtt, ok=False)
            raise TransportError(f"no endpoint registered at {uri}")
        try:
            response = handler(payload)
        except TransportError:
            self.stats.record(uri, rtt, ok=False)
            raise
        self.stats.record(uri, rtt, ok=True)
        return response

    def estimated_delay(self, uri: str, *, source: str | None = None) -> float:
        """Base one-way delay to an endpoint (the §5.2 network-delay metric)."""
        return self.latency.base_latency(source or self.client_host, host_of_uri(uri))
