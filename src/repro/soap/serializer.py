"""Serialization of ebRIM objects to/from transport dicts.

The simulated SOAP boundary moves plain data, not live objects: this module
flattens each RIM class to a tagged dict (``{"_type": "Service", ...}``) and
reconstructs it on the other side.  Round-tripping is exact for every field
the model carries, which the property tests verify.
"""

from __future__ import annotations

from typing import Any

from repro.rim import (
    AdhocQuery,
    Association,
    AssociationType,
    AuditableEvent,
    EventType,
    Classification,
    ClassificationNode,
    ClassificationScheme,
    EmailAddress,
    ExternalIdentifier,
    ExternalLink,
    ExtrinsicObject,
    InternationalString,
    NotifyAction,
    Organization,
    PersonName,
    PostalAddress,
    RegistryObject,
    RegistryPackage,
    Service,
    ServiceBinding,
    Slot,
    SpecificationLink,
    Subscription,
    TelephoneNumber,
    User,
)
from repro.rim.status import ObjectStatus
from repro.util.errors import InvalidRequestError

SerializedObject = dict[str, Any]


def _istring(value: InternationalString) -> list[dict[str, str]]:
    return [
        {"locale": s.locale, "charset": s.charset, "value": s.value}
        for s in value.localized()
    ]


def _istring_back(data: list[dict[str, str]]) -> InternationalString:
    out = InternationalString()
    for entry in data:
        out.set(entry["value"], locale=entry["locale"])
    return out


def _base_fields(obj: RegistryObject) -> SerializedObject:
    return {
        "_type": obj.type_name,
        "id": obj.id,
        "lid": obj.lid,
        "name": _istring(obj.name),
        "description": _istring(obj.description),
        "status": obj.status.value,
        "versionName": obj.version.version_name,
        "owner": obj.owner,
        "home": obj.home,
        "slots": [
            {"name": s.name, "values": list(s.values), "slotType": s.slot_type}
            for s in obj.slots
        ],
        "classificationIds": list(obj.classification_ids),
        "externalIdentifierIds": list(obj.external_identifier_ids),
    }


def _apply_base(obj: RegistryObject, data: SerializedObject) -> None:
    obj.lid = data["lid"]
    obj.name = _istring_back(data["name"])
    obj.description = _istring_back(data["description"])
    obj.status = ObjectStatus(data["status"])
    obj.version.version_name = data["versionName"]
    obj.owner = data["owner"]
    obj.home = data["home"]
    for slot in data["slots"]:
        obj.slots.add(
            Slot(name=slot["name"], values=slot["values"], slot_type=slot["slotType"])
        )
    obj.classification_ids = list(data["classificationIds"])
    obj.external_identifier_ids = list(data["externalIdentifierIds"])


def _address(a: PostalAddress) -> dict[str, str]:
    return {
        "streetNumber": a.street_number,
        "street": a.street,
        "city": a.city,
        "state": a.state,
        "country": a.country,
        "postalCode": a.postal_code,
        "type": a.type,
    }


def _address_back(d: dict[str, str]) -> PostalAddress:
    return PostalAddress(
        street_number=d["streetNumber"],
        street=d["street"],
        city=d["city"],
        state=d["state"],
        country=d["country"],
        postal_code=d["postalCode"],
        type=d["type"],
    )


def serialize(obj: RegistryObject) -> SerializedObject:
    """Flatten one RIM object to a transport dict."""
    data = _base_fields(obj)
    if isinstance(obj, Organization):
        data.update(
            {
                "parent": obj.parent,
                "primaryContact": obj.primary_contact,
                "addresses": [_address(a) for a in obj.addresses],
                "emails": [{"address": e.address, "type": e.type} for e in obj.emails],
                "telephones": [
                    {
                        "number": t.number,
                        "countryCode": t.country_code,
                        "areaCode": t.area_code,
                        "extension": t.extension,
                        "type": t.type,
                    }
                    for t in obj.telephones
                ],
                "serviceIds": list(obj.service_ids),
            }
        )
    elif isinstance(obj, Service):
        data.update({"provider": obj.provider, "bindingIds": list(obj.binding_ids)})
    elif isinstance(obj, ServiceBinding):
        data.update(
            {
                "service": obj.service,
                "accessUri": obj.access_uri,
                "targetBinding": obj.target_binding,
                "specificationLinkIds": list(obj.specification_link_ids),
            }
        )
    elif isinstance(obj, Association):
        data.update(
            {
                "sourceObject": obj.source_object,
                "targetObject": obj.target_object,
                "associationType": obj.association_type.value,
                "confirmedBySource": obj.confirmed_by_source,
                "confirmedByTarget": obj.confirmed_by_target,
            }
        )
    elif isinstance(obj, Classification):
        data.update(
            {
                "classifiedObject": obj.classified_object,
                "classificationNode": obj.classification_node,
                "classificationScheme": obj.classification_scheme,
                "nodeRepresentation": obj.node_representation,
            }
        )
    elif isinstance(obj, ClassificationScheme):
        data.update(
            {
                "isInternal": obj.is_internal,
                "nodeType": obj.node_type,
                "childNodeIds": list(obj.child_node_ids),
            }
        )
    elif isinstance(obj, ClassificationNode):
        data.update(
            {
                "code": obj.code,
                "parent": obj.parent,
                "path": obj.path,
                "childNodeIds": list(obj.child_node_ids),
            }
        )
    elif isinstance(obj, ExternalIdentifier):
        data.update(
            {
                "registryObject": obj.registry_object,
                "identificationScheme": obj.identification_scheme,
                "value": obj.value,
            }
        )
    elif isinstance(obj, ExternalLink):
        data.update({"externalUri": obj.external_uri})
    elif isinstance(obj, ExtrinsicObject):
        data.update(
            {
                "mimeType": obj.mime_type,
                "isOpaque": obj.is_opaque,
                "contentVersion": obj.content_version,
            }
        )
    elif isinstance(obj, RegistryPackage):
        data.update({"memberIds": list(obj.member_ids)})
    elif isinstance(obj, SpecificationLink):
        data.update(
            {
                "serviceBinding": obj.service_binding,
                "specificationObject": obj.specification_object,
                "usageDescription": obj.usage_description,
            }
        )
    elif isinstance(obj, User):
        data.update(
            {
                "alias": obj.alias,
                "firstName": obj.person_name.first_name,
                "middleName": obj.person_name.middle_name,
                "lastName": obj.person_name.last_name,
                "organization": obj.organization,
                "roles": sorted(obj.roles),
            }
        )
    elif isinstance(obj, AuditableEvent):
        data.update(
            {
                "eventType": obj.event_type.value,
                "affectedObject": obj.affected_object,
                "userId": obj.user_id,
                "timestamp": obj.timestamp,
                "requestId": obj.request_id,
                "sequence": obj.sequence,
            }
        )
    elif isinstance(obj, AdhocQuery):
        data.update({"query": obj.query, "queryLanguage": obj.query_language})
    elif isinstance(obj, Subscription):
        data.update(
            {
                "selector": obj.selector,
                "actions": [
                    {"mode": a.mode, "endpoint": a.endpoint} for a in obj.actions
                ],
                "startTime": obj.start_time,
                "endTime": obj.end_time,
            }
        )
    return data


def deserialize(data: SerializedObject) -> RegistryObject:
    """Rebuild a RIM object from a transport dict."""
    type_name = data.get("_type")
    object_id = data["id"]
    obj: RegistryObject
    if type_name == "Organization":
        obj = Organization(
            object_id, parent=data["parent"], primary_contact=data["primaryContact"]
        )
        obj.addresses = [_address_back(a) for a in data["addresses"]]
        obj.emails = [
            EmailAddress(address=e["address"], type=e["type"]) for e in data["emails"]
        ]
        obj.telephones = [
            TelephoneNumber(
                number=t["number"],
                country_code=t["countryCode"],
                area_code=t["areaCode"],
                extension=t["extension"],
                type=t["type"],
            )
            for t in data["telephones"]
        ]
        obj.service_ids = list(data["serviceIds"])
    elif type_name == "Service":
        obj = Service(object_id, provider=data["provider"])
        obj.binding_ids = list(data["bindingIds"])
    elif type_name == "ServiceBinding":
        obj = ServiceBinding(
            object_id,
            service=data["service"],
            access_uri=data["accessUri"],
            target_binding=data["targetBinding"],
        )
        obj.specification_link_ids = list(data["specificationLinkIds"])
    elif type_name == "Association":
        obj = Association(
            object_id,
            source_object=data["sourceObject"],
            target_object=data["targetObject"],
            association_type=AssociationType.from_name(data["associationType"]),
        )
        obj.confirmed_by_source = data["confirmedBySource"]
        obj.confirmed_by_target = data["confirmedByTarget"]
    elif type_name == "Classification":
        obj = Classification(
            object_id,
            classified_object=data["classifiedObject"],
            classification_node=data["classificationNode"],
            classification_scheme=data["classificationScheme"],
            node_representation=data["nodeRepresentation"],
        )
    elif type_name == "ClassificationScheme":
        obj = ClassificationScheme(
            object_id, is_internal=data["isInternal"], node_type=data["nodeType"]
        )
        obj.child_node_ids = list(data["childNodeIds"])
    elif type_name == "ClassificationNode":
        obj = ClassificationNode(
            object_id, code=data["code"], parent=data["parent"], path=data["path"]
        )
        obj.child_node_ids = list(data["childNodeIds"])
    elif type_name == "ExternalIdentifier":
        obj = ExternalIdentifier(
            object_id,
            registry_object=data["registryObject"],
            identification_scheme=data["identificationScheme"],
            value=data["value"],
        )
    elif type_name == "ExternalLink":
        obj = ExternalLink(object_id, external_uri=data["externalUri"])
    elif type_name == "ExtrinsicObject":
        obj = ExtrinsicObject(
            object_id,
            mime_type=data["mimeType"],
            is_opaque=data["isOpaque"],
            content_version=data["contentVersion"],
        )
    elif type_name == "RegistryPackage":
        obj = RegistryPackage(object_id)
        obj.member_ids = list(data["memberIds"])
    elif type_name == "SpecificationLink":
        obj = SpecificationLink(
            object_id,
            service_binding=data["serviceBinding"],
            specification_object=data["specificationObject"],
            usage_description=data["usageDescription"],
        )
    elif type_name == "User":
        obj = User(
            object_id,
            alias=data["alias"],
            person_name=PersonName(
                first_name=data["firstName"],
                middle_name=data["middleName"],
                last_name=data["lastName"],
            ),
            organization=data["organization"],
        )
        obj.roles = set(data["roles"])
    elif type_name == "AuditableEvent":
        obj = AuditableEvent(
            object_id,
            event_type=EventType(data["eventType"]),
            affected_object=data["affectedObject"],
            user_id=data["userId"],
            timestamp=data["timestamp"],
            request_id=data["requestId"],
        )
        obj.sequence = data.get("sequence", 0)
    elif type_name == "AdhocQuery":
        obj = AdhocQuery(
            object_id, query=data["query"], query_language=data["queryLanguage"]
        )
    elif type_name == "Subscription":
        obj = Subscription(
            object_id,
            selector=data["selector"],
            actions=[
                NotifyAction(mode=a["mode"], endpoint=a["endpoint"])
                for a in data["actions"]
            ],
            start_time=data["startTime"],
            end_time=data["endTime"],
        )
    else:
        raise InvalidRequestError(f"cannot deserialize object type {type_name!r}")
    _apply_base(obj, data)
    return obj
