"""Protocol bindings: SOAP dispatch and the HTTP-GET query binding.

* :class:`SoapRegistryBinding` exposes one RegistryServer at a SOAP endpoint:
  it authenticates the envelope's session token, dispatches each ebRS request
  message to the LifeCycleManager or QueryManager, and maps errors to SOAP
  faults.  LifeCycleManager requests without a valid session fault with an
  authentication error; QueryManager requests fall back to the guest session
  (§1.3.2.4's public read access).
* :class:`HttpGetBinding` implements the mandatory REST-ish HTTP interface
  (§2.2.3): read-only URL access to query operations; publishes/modifies are
  rejected, exactly as freebXML's HTTP interface "does not support
  functionality to publish or modify registry contents".
"""

from __future__ import annotations

from urllib.parse import parse_qs, urlparse

from repro.registry.server import RegistryServer
from repro.rim import QUERY_LANGUAGE_SQL
from repro.security.authn import Session
from repro.soap.envelope import SoapEnvelope, SoapFault
from repro.soap.messages import (
    AddSlotsRequest,
    AdhocQueryRequest,
    ApproveObjectsRequest,
    DeprecateObjectsRequest,
    GetRegistryObjectRequest,
    GetServiceBindingsRequest,
    RegistryResponse,
    RemoveObjectsRequest,
    RemoveSlotsRequest,
    SubmitObjectsRequest,
    UndeprecateObjectsRequest,
    UpdateObjectsRequest,
)
from repro.soap.serializer import deserialize, serialize
from repro.rim.slots import Slot
from repro.util.errors import AuthenticationError, InvalidRequestError, RegistryError

SOAP_PATH = "/omar/registry/soap"


class SoapRegistryBinding:
    """Server-side SOAP dispatch for one registry."""

    def __init__(self, registry: RegistryServer) -> None:
        self.registry = registry
        #: token → session, maintained on login through this binding
        self._sessions: dict[str, Session] = {}

    @property
    def endpoint_uri(self) -> str:
        base = self.registry.home.split("/omar/", 1)[0]
        return base + SOAP_PATH

    # -- session plumbing ----------------------------------------------------

    def register_session(self, session: Session) -> None:
        self._sessions[session.token] = session

    def _session_for(self, envelope: SoapEnvelope, *, required: bool) -> Session:
        token = envelope.session_token
        if token and token in self._sessions:
            return self._sessions[token]
        if required:
            raise AuthenticationError(
                "LifeCycleManager access requires an authenticated session"
            )
        return self.registry.guest()

    # -- dispatch ----------------------------------------------------------------

    def handle(self, envelope: SoapEnvelope) -> RegistryResponse | SoapFault:
        """Process one envelope; registry errors become SoapFaults."""
        try:
            return self._dispatch(envelope)
        except RegistryError as error:
            return SoapFault.from_error(error)

    def _dispatch(self, envelope: SoapEnvelope) -> RegistryResponse:
        body = envelope.body
        lcm = self.registry.lcm
        qm = self.registry.qm
        if isinstance(body, SubmitObjectsRequest):
            session = self._session_for(envelope, required=True)
            objects = [deserialize(data) for data in body.objects]
            ids = lcm.submit_objects(session, objects)
            return RegistryResponse(ids=ids)
        if isinstance(body, UpdateObjectsRequest):
            session = self._session_for(envelope, required=True)
            objects = [deserialize(data) for data in body.objects]
            ids = lcm.update_objects(session, objects)
            return RegistryResponse(ids=ids)
        if isinstance(body, ApproveObjectsRequest):
            session = self._session_for(envelope, required=True)
            return RegistryResponse(ids=lcm.approve_objects(session, body.ids))
        if isinstance(body, DeprecateObjectsRequest):
            session = self._session_for(envelope, required=True)
            return RegistryResponse(ids=lcm.deprecate_objects(session, body.ids))
        if isinstance(body, UndeprecateObjectsRequest):
            session = self._session_for(envelope, required=True)
            return RegistryResponse(ids=lcm.undeprecate_objects(session, body.ids))
        if isinstance(body, RemoveObjectsRequest):
            session = self._session_for(envelope, required=True)
            return RegistryResponse(ids=lcm.remove_objects(session, body.ids))
        if isinstance(body, AddSlotsRequest):
            session = self._session_for(envelope, required=True)
            slots = [
                Slot(name=s["name"], values=s["values"], slot_type=s.get("slotType"))
                for s in body.slots
            ]
            lcm.add_slots(session, body.object_id, slots)
            return RegistryResponse(ids=[body.object_id])
        if isinstance(body, RemoveSlotsRequest):
            session = self._session_for(envelope, required=True)
            lcm.remove_slots(session, body.object_id, body.names)
            return RegistryResponse(ids=[body.object_id])
        if isinstance(body, AdhocQueryRequest):
            session = self._session_for(envelope, required=False)
            self.registry.check_read(session)
            response = qm.execute_adhoc_query(
                body.query,
                query_language=body.query_language,
                start_index=body.start_index,
                max_results=body.max_results,
            )
            return RegistryResponse(
                rows=response.rows, total_result_count=response.total_result_count
            )
        if isinstance(body, GetRegistryObjectRequest):
            session = self._session_for(envelope, required=False)
            self.registry.check_read(session)
            obj = qm.get_registry_object(body.object_id)
            return RegistryResponse(objects=[serialize(obj)])
        if isinstance(body, GetServiceBindingsRequest):
            session = self._session_for(envelope, required=False)
            self.registry.check_read(session)
            bindings = qm.get_service_bindings(body.service_id)
            return RegistryResponse(objects=[serialize(b) for b in bindings])
        raise InvalidRequestError(f"unknown request type: {type(body).__name__}")


class HttpGetBinding:
    """The mandatory read-only HTTP interface over the QueryManager.

    URL forms::

        <base>?interface=QueryManager&method=getRegistryObject&param-id=<id>
        <base>?interface=QueryManager&method=getRepositoryItem&param-id=<id>
        <base>?interface=QueryManager&method=executeQuery&param-query=<sql>

    ``getRepositoryItem`` serves the content bytes — Table 1.1's "any
    metadata or artifact … addressable via an HTTP URL".  Anything targeting
    the LifeCycleManager is rejected.
    """

    def __init__(self, registry: RegistryServer) -> None:
        self.registry = registry

    def get(self, url: str) -> RegistryResponse | SoapFault:
        try:
            return self._get(url)
        except RegistryError as error:
            return SoapFault.from_error(error)

    def _get(self, url: str) -> RegistryResponse:
        parsed = urlparse(url)
        params = {k: v[0] for k, v in parse_qs(parsed.query).items()}
        # the HTTP binding is anonymous: a non-public registry rejects it
        self.registry.check_read(self.registry.guest())
        interface = params.get("interface", "QueryManager")
        if interface != "QueryManager":
            raise InvalidRequestError(
                "HTTP interface binds only the QueryManager (read-only access)"
            )
        method = params.get("method")
        if method == "getRegistryObject":
            object_id = params.get("param-id")
            if not object_id:
                raise InvalidRequestError("getRegistryObject requires param-id")
            obj = self.registry.qm.get_registry_object(object_id)
            return RegistryResponse(objects=[serialize(obj)])
        if method == "getRepositoryItem":
            object_id = params.get("param-id")
            if not object_id:
                raise InvalidRequestError("getRepositoryItem requires param-id")
            item = self.registry.repository.retrieve(object_id)
            return RegistryResponse(
                rows=[
                    {
                        "id": item.object_id,
                        "mimeType": item.mime_type,
                        "content": item.content.decode("utf-8", errors="replace"),
                        "digest": item.digest,
                    }
                ]
            )
        if method == "executeQuery":
            query = params.get("param-query")
            if not query:
                raise InvalidRequestError("executeQuery requires param-query")
            response = self.registry.qm.execute_adhoc_query(
                query, query_language=params.get("param-lang", QUERY_LANGUAGE_SQL)
            )
            return RegistryResponse(
                rows=response.rows, total_result_count=response.total_result_count
            )
        raise InvalidRequestError(f"unknown HTTP method parameter: {method!r}")
