"""Protocol bindings: SOAP dispatch and the HTTP-GET query binding.

Both bindings are thin protocol edges over the registry kernel
(:mod:`repro.registry.kernel`): they decode the wire form (envelope body /
URL query string), describe themselves to the kernel as an
:class:`~repro.registry.kernel.EdgeProfile`, and let the shared interceptor
chain do session lookup, authorization, operation dispatch, fault mapping,
and accounting.

* :class:`SoapRegistryBinding` exposes one RegistryServer at a SOAP endpoint:
  the kernel authenticates the envelope's session token and dispatches each
  ebRS request message to the LifeCycleManager or QueryManager operation
  registered for its type.  LifeCycleManager requests without a valid
  session fault with an authentication error; QueryManager requests fall
  back to the guest session (§1.3.2.4's public read access).
* :class:`HttpGetBinding` implements the mandatory REST-ish HTTP interface
  (§2.2.3): read-only URL access to query operations; publishes/modifies are
  rejected, exactly as freebXML's HTTP interface "does not support
  functionality to publish or modify registry contents".

Every error path funnels through the kernel's single fault mapper, so
``RegistryError.code`` values serialize identically whether a request
arrived via SOAP, HTTP GET, or the in-process JAXR edge.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from urllib.parse import parse_qs, urlparse

from repro.registry.kernel import EdgeProfile, OperationSpec, RequestContext
from repro.soap.envelope import SoapEnvelope, SoapFault
from repro.util.errors import AuthenticationError, InvalidRequestError

if TYPE_CHECKING:  # pragma: no cover
    from repro.registry.server import RegistryServer
    from repro.security.authn import Session
    from repro.soap.messages import RegistryResponse

SOAP_PATH = "/omar/registry/soap"


class SoapRegistryBinding:
    """Server-side SOAP edge for one registry."""

    def __init__(self, registry: RegistryServer) -> None:
        self.registry = registry
        self.kernel = registry.kernel
        #: token → session, maintained on login through this binding
        self._sessions: dict[str, Session] = {}
        self.edge = EdgeProfile(
            name="soap",
            authenticate=self._authenticate,
            fault_mapper=SoapFault.from_error,
        )

    @property
    def endpoint_uri(self) -> str:
        base = self.registry.home.split("/omar/", 1)[0]
        return base + SOAP_PATH

    # -- session plumbing ----------------------------------------------------

    def register_session(self, session: Session) -> None:
        self._sessions[session.token] = session

    def _authenticate(self, ctx: RequestContext, spec: OperationSpec) -> Session:
        token = ctx.token
        if token and token in self._sessions:
            return self._sessions[token]
        if spec.requires_session:
            raise AuthenticationError(
                "LifeCycleManager access requires an authenticated session"
            )
        return self.registry.guest()

    # -- dispatch ----------------------------------------------------------------

    def handle(self, envelope: SoapEnvelope) -> RegistryResponse | SoapFault:
        """Process one envelope; registry errors become SoapFaults."""
        forwarded_by = envelope.forwarded_by
        return self.kernel.execute(
            self.edge,
            body=envelope.body,
            token=envelope.session_token,
            traceparent=envelope.traceparent,
            tags={"forwarded_by": forwarded_by} if forwarded_by else None,
        )


class HttpGetBinding:
    """The mandatory read-only HTTP interface over the QueryManager.

    URL forms::

        <base>?interface=QueryManager&method=getRegistryObject&param-id=<id>
        <base>?interface=QueryManager&method=getRepositoryItem&param-id=<id>
        <base>?interface=QueryManager&method=executeQuery&param-query=<sql>

    ``getRepositoryItem`` serves the content bytes — Table 1.1's "any
    metadata or artifact … addressable via an HTTP URL".  Anything targeting
    the LifeCycleManager is rejected.  Duplicate query parameters keep the
    first value; the URL path is ignored (the query string alone selects the
    operation), both as in freebXML's servlet — with two operational
    exceptions: ``/metrics`` serves the registry's Prometheus exposition and
    ``/health`` a liveness document, both answered before the kernel
    pipeline (an exporter scrape is not a registry query).
    """

    def __init__(self, registry: RegistryServer) -> None:
        self.registry = registry
        self.kernel = registry.kernel
        self.edge = EdgeProfile(
            name="http",
            authenticate=self._authenticate,
            fault_mapper=SoapFault.from_error,
            # the admit hook already gated the anonymous read below
            enforce_read_gate=False,
            admit=self._admit,
        )

    def _admit(self, ctx: RequestContext) -> None:
        # the HTTP binding is anonymous: a non-public registry rejects it
        self.registry.check_read(self.registry.guest())
        interface = ctx.params.get("interface", "QueryManager")
        if interface != "QueryManager":
            raise InvalidRequestError(
                "HTTP interface binds only the QueryManager (read-only access)"
            )

    def _authenticate(self, ctx: RequestContext, spec: OperationSpec) -> Session:
        return self.registry.guest()

    def get(
        self, url: str, headers: dict[str, str] | None = None
    ) -> RegistryResponse | SoapFault | str | dict:
        parsed = urlparse(url)
        if parsed.path.endswith("/metrics"):
            return self.registry.telemetry.render_prometheus()
        if parsed.path.endswith("/health"):
            return self.registry.telemetry.health()
        params = {k: v[0] for k, v in parse_qs(parsed.query).items()}
        return self.kernel.execute(
            self.edge,
            params=params,
            http_method=params.get("method"),
            via_http=True,
            traceparent=(headers or {}).get(SoapEnvelope.TRACEPARENT_HEADER),
        )
