"""Task model for the host simulator.

An MTC task (thesis §3.1) is a short computation: it needs ``cpu_seconds``
of processor work and holds ``memory`` bytes while running.  Hosts execute
tasks under processor sharing, so wall-clock duration stretches with load.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

_task_counter = itertools.count(1)


@dataclass
class Task:
    """One unit of work submitted to a host."""

    cpu_seconds: float
    memory: int
    name: str = ""

    #: bookkeeping filled in by the host / metrics
    task_id: int = field(default_factory=lambda: next(_task_counter))
    submitted_at: float | None = None
    started_at: float | None = None
    completed_at: float | None = None
    host: str | None = None
    #: remaining processor work (seconds of a dedicated core)
    remaining: float = field(init=False)

    def __post_init__(self) -> None:
        if self.cpu_seconds <= 0:
            raise ValueError(f"task cpu_seconds must be positive: {self.cpu_seconds}")
        if self.memory < 0:
            raise ValueError(f"task memory must be non-negative: {self.memory}")
        self.remaining = float(self.cpu_seconds)
        if not self.name:
            self.name = f"task-{self.task_id}"

    @property
    def response_time(self) -> float | None:
        """Submission-to-completion wall time, once finished."""
        if self.completed_at is None or self.submitted_at is None:
            return None
        return self.completed_at - self.submitted_at

    @property
    def slowdown(self) -> float | None:
        """Response time divided by ideal (unloaded) service time."""
        rt = self.response_time
        if rt is None:
            return None
        return rt / self.cpu_seconds
