"""Network latency model between simulation nodes.

Used by the simulated SOAP transport and by the thesis' *future directions*
extension (§5.2): ranking access URIs by estimated network delay.  Latency
is a symmetric base matrix plus optional jitter drawn from a seeded RNG.
"""

from __future__ import annotations

import random

from repro.util.errors import InvalidRequestError


class LatencyModel:
    """Pairwise one-way latency in seconds."""

    def __init__(
        self,
        *,
        default_latency: float = 0.005,
        jitter_fraction: float = 0.0,
        seed: int | None = None,
    ) -> None:
        if default_latency < 0:
            raise InvalidRequestError("default latency must be non-negative")
        self.default_latency = default_latency
        self.jitter_fraction = jitter_fraction
        self._rng = random.Random(seed)
        self._pairs: dict[frozenset[str], float] = {}

    def set_latency(self, a: str, b: str, latency: float) -> None:
        if latency < 0:
            raise InvalidRequestError("latency must be non-negative")
        self._pairs[frozenset((a, b))] = latency

    def base_latency(self, a: str, b: str) -> float:
        if a == b:
            return 0.0
        return self._pairs.get(frozenset((a, b)), self.default_latency)

    def sample(self, a: str, b: str) -> float:
        """One-way delay sample, with jitter applied."""
        base = self.base_latency(a, b)
        if self.jitter_fraction <= 0 or base == 0:
            return base
        jitter = self._rng.uniform(-self.jitter_fraction, self.jitter_fraction)
        return max(0.0, base * (1.0 + jitter))
