"""Host and cluster simulation substrate.

Replaces the thesis' physical SDSU testbed with a deterministic
discrete-event model: hosts with processor-sharing cores, UNIX-style load
averages, and RAM/swap accounting; the per-host NodeStatus monitoring Web
Service; a network latency model; and the simulation engine everything
schedules through.
"""

from repro.sim.cluster import Cluster, HostSpec
from repro.sim.engine import EventHandle, PeriodicTask, SimEngine
from repro.sim.host import LOAD_WINDOW_SECONDS, Host
from repro.sim.network import LatencyModel
from repro.sim.nodestatus import (
    NODESTATUS_PATH,
    NODESTATUS_SERVICE_NAME,
    NodeStatusReading,
    NodeStatusService,
    nodestatus_uri,
)
from repro.sim.task import Task

__all__ = [
    "Cluster",
    "HostSpec",
    "EventHandle",
    "PeriodicTask",
    "SimEngine",
    "LOAD_WINDOW_SECONDS",
    "Host",
    "LatencyModel",
    "NODESTATUS_PATH",
    "NODESTATUS_SERVICE_NAME",
    "NodeStatusReading",
    "NodeStatusService",
    "nodestatus_uri",
    "Task",
]
