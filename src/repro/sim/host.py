"""Simulated host: cores, processor-sharing run queue, memory, swap, load average.

This replaces the thesis' physical SDSU machines (volta, exergy, romulus,
thermo).  The observable surface matches what the real NodeStatus Web
Service reported:

* **CPU load** — the UNIX 1-minute load average, an exponentially damped
  mean of the run-queue length ("the number of processes waiting in the
  ready to execute queue", thesis §3.2);
* **available physical memory** and **available swap** — running tasks pin
  their footprint in RAM first, spilling to swap when RAM is exhausted.

Execution model: processor sharing.  With ``n`` tasks on ``c`` cores each
task progresses at rate ``min(1, c/n)``; the host reschedules its next
completion event whenever the task set changes.  All progress accounting is
lazy — state advances only when an event or an observer touches the host —
so the simulation cost is O(events), independent of time resolution.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.sim.engine import EventHandle, SimEngine
from repro.sim.task import Task

#: damping window of the reported load average (UNIX 1-minute average)
LOAD_WINDOW_SECONDS = 60.0


class Host:
    """One simulated machine."""

    def __init__(
        self,
        name: str,
        engine: SimEngine,
        *,
        cores: int = 1,
        memory_total: int = 8 << 30,
        swap_total: int = 8 << 30,
    ) -> None:
        if cores < 1:
            raise ValueError(f"host needs at least one core: {cores}")
        self.name = name
        self.engine = engine
        self.cores = cores
        self.memory_total = memory_total
        self.swap_total = swap_total
        self._tasks: list[Task] = []
        self._memory_used = 0
        self._swap_used = 0
        self._load_average = 0.0
        self._last_progress = engine.now
        self._last_load_update = engine.now
        self._completion_handle: EventHandle | None = None
        self._completion_listeners: list[Callable[[Task], None]] = []
        #: cumulative core-seconds of work completed (utilization metric)
        self.work_done = 0.0
        self.tasks_completed = 0
        self.tasks_rejected = 0
        #: a crashed/offline host rejects submissions and loses running tasks
        self.online = True
        self.tasks_lost = 0

    # -- observers -------------------------------------------------------------

    def on_task_complete(self, listener: Callable[[Task], None]) -> None:
        self._completion_listeners.append(listener)

    @property
    def run_queue_length(self) -> int:
        """Instantaneous number of runnable tasks."""
        return len(self._tasks)

    def load_average(self) -> float:
        """Exponentially damped run-queue length (the NodeStatus LOAD field)."""
        self._update_load()
        return self._load_average

    def memory_available(self) -> int:
        self._progress()
        return max(0, self.memory_total - self._memory_used)

    def swap_available(self) -> int:
        self._progress()
        return max(0, self.swap_total - self._swap_used)

    def utilization(self, horizon: float) -> float:
        """Fraction of capacity used over [0, horizon]."""
        if horizon <= 0:
            return 0.0
        return self.work_done / (self.cores * horizon)

    # -- task submission -----------------------------------------------------------

    def submit(self, task: Task) -> bool:
        """Admit a task; rejected when offline or memory+swap is exhausted."""
        if not self.online:
            self.tasks_rejected += 1
            return False
        self._progress()
        self._update_load()
        free_ram = self.memory_total - self._memory_used
        free_swap = self.swap_total - self._swap_used
        if task.memory > free_ram + free_swap:
            self.tasks_rejected += 1
            return False
        in_ram = min(task.memory, free_ram)
        self._memory_used += in_ram
        self._swap_used += task.memory - in_ram
        task._ram_share = in_ram  # type: ignore[attr-defined]
        task.submitted_at = task.submitted_at if task.submitted_at is not None else self.engine.now
        task.started_at = self.engine.now
        task.host = self.name
        self._tasks.append(task)
        self._reschedule_completion()
        return True

    # -- progress accounting -----------------------------------------------------------

    def _rate(self) -> float:
        """Per-task progress rate under processor sharing."""
        n = len(self._tasks)
        if n == 0:
            return 0.0
        return min(1.0, self.cores / n)

    #: residual work below this is considered finished; must exceed the float
    #: ulp of any plausible simulation timestamp so completion events cannot
    #: degenerate into zero-delay loops.
    _EPSILON = 1e-9

    def _progress(self) -> None:
        """Advance all running tasks to the engine's current time."""
        now = self.engine.now
        # fold the elapsed window into the load average *before* harvesting:
        # the run queue held its current length for the whole window, and
        # completions take effect exactly at `now`.
        self._update_load()
        elapsed = now - self._last_progress
        if elapsed > 0:
            rate = self._rate()
            if rate > 0:
                done = elapsed * rate
                for task in self._tasks:
                    consumed = min(task.remaining, done)
                    task.remaining -= consumed
                    self.work_done += consumed
        self._last_progress = now
        # harvest finished tasks even on zero-elapsed calls: a completion
        # event may fire at a timestamp progress already advanced to.
        finished = [t for t in self._tasks if t.remaining <= self._EPSILON]
        for task in finished:
            self._finish(task)

    def _finish(self, task: Task) -> None:
        self._tasks.remove(task)
        task.completed_at = self.engine.now
        task.remaining = 0.0
        ram_share = getattr(task, "_ram_share", task.memory)
        self._memory_used -= ram_share
        self._swap_used -= task.memory - ram_share
        self.tasks_completed += 1
        for listener in self._completion_listeners:
            listener(task)

    def _reschedule_completion(self) -> None:
        if self._completion_handle is not None:
            self._completion_handle.cancel()
            self._completion_handle = None
        if not self._tasks:
            return
        rate = self._rate()
        next_remaining = min(task.remaining for task in self._tasks)
        delay = next_remaining / rate
        self._completion_handle = self.engine.schedule(delay, self._on_completion_event)

    def _on_completion_event(self) -> None:
        self._progress()
        self._update_load()
        self._reschedule_completion()

    # -- failure injection ---------------------------------------------------------

    def crash(self) -> int:
        """Take the host offline, losing every running task; returns the count."""
        self._progress()
        self._update_load()
        lost = len(self._tasks)
        for task in list(self._tasks):
            ram_share = getattr(task, "_ram_share", task.memory)
            self._memory_used -= ram_share
            self._swap_used -= task.memory - ram_share
        self._tasks.clear()
        self.tasks_lost += lost
        if self._completion_handle is not None:
            self._completion_handle.cancel()
            self._completion_handle = None
        self.online = False
        # the crashed machine's queue is empty; decay restarts from zero
        self._load_average = 0.0
        return lost

    def recover(self) -> None:
        """Bring a crashed host back online (empty, cold)."""
        self.online = True

    # -- load average -----------------------------------------------------------------

    def _update_load(self) -> None:
        """Exponential decay toward the instantaneous run-queue length."""
        now = self.engine.now
        dt = now - self._last_load_update
        if dt <= 0:
            return
        alpha = math.exp(-dt / LOAD_WINDOW_SECONDS)
        self._load_average = (
            self._load_average * alpha + self.run_queue_length * (1.0 - alpha)
        )
        self._last_load_update = now

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Host({self.name!r}, cores={self.cores}, "
            f"queue={self.run_queue_length}, load={self._load_average:.2f})"
        )
