"""The NodeStatus Web Service — the thesis' client-side monitoring agent.

§3.3: "NodeStatus is dormant software that is invoked periodically.  The
NodeStatus Web Service, when invoked, returns the CPU load along with the
physical and swap memory available on the host."

Each simulated host deploys one :class:`NodeStatusService`; its access URI
follows the thesis convention
``http://<host>:8080/NodeStatus/NodeStatusService``.  The registry's
TimeHits timer invokes :meth:`invoke` (optionally through the simulated SOAP
transport) and stores the reading in the NodeState table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.host import Host

NODESTATUS_SERVICE_NAME = "NodeStatus"
NODESTATUS_PATH = "/NodeStatus/NodeStatusService"


def nodestatus_uri(host_name: str, *, port: int = 8080) -> str:
    """Canonical NodeStatus endpoint URI for a host."""
    return f"http://{host_name}:{port}{NODESTATUS_PATH}"


@dataclass(frozen=True)
class NodeStatusReading:
    """The triple the NodeStatus service returns on each invocation."""

    host: str
    cpu_load: float
    memory_available: int
    swap_available: int


class NodeStatusService:
    """The per-host monitoring Web Service.

    ``metric`` selects what the LOAD field reports: ``"runqueue"`` (default)
    is the thesis' definition — "the number of processes waiting in the
    ready to execute queue" — an instantaneous count; ``"loadavg"`` reports
    the exponentially damped 1-minute average instead (an ablation knob:
    damped readings lag load changes and are studied in bench LB-3).
    """

    def __init__(self, host: Host, *, port: int = 8080, metric: str = "runqueue") -> None:
        if metric not in ("runqueue", "loadavg"):
            raise ValueError(f"unknown load metric: {metric!r}")
        self.host = host
        self.port = port
        self.metric = metric
        self.invocation_count = 0

    @property
    def access_uri(self) -> str:
        return nodestatus_uri(self.host.name, port=self.port)

    def invoke(self) -> NodeStatusReading:
        """Sample the host (the Web Service's single operation)."""
        self.invocation_count += 1
        if self.metric == "runqueue":
            load = float(self.host.run_queue_length)
        else:
            load = self.host.load_average()
        return NodeStatusReading(
            host=self.host.name,
            cpu_load=load,
            memory_available=self.host.memory_available(),
            swap_available=self.host.swap_available(),
        )
