"""Cluster: a named set of hosts sharing one simulation engine.

Replaces the thesis' testbed (volta/exergy/romulus/thermo.sdsu.edu).  The
cluster owns host construction, deploys the NodeStatus monitoring service on
each host (thesis Figure 3.7 — "the administrator needs to deploy NodeStatus
on the hosts to be load balanced"), models *application* service deployment
(which hosts can serve which Web Service), and provides the sampling helpers
the experiment metrics use.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.engine import SimEngine
from repro.sim.host import Host
from repro.sim.network import LatencyModel
from repro.sim.nodestatus import NodeStatusService
from repro.sim.task import Task
from repro.util.errors import InvalidRequestError, ObjectNotFoundError


@dataclass(frozen=True)
class HostSpec:
    """Construction parameters for one host."""

    name: str
    cores: int = 1
    memory_total: int = 8 << 30
    swap_total: int = 8 << 30


class Cluster:
    """A set of simulated hosts, their monitors, and service deployments."""

    def __init__(
        self,
        engine: SimEngine,
        *,
        latency: LatencyModel | None = None,
        load_metric: str = "runqueue",
    ) -> None:
        self.engine = engine
        self.latency = latency or LatencyModel()
        self.load_metric = load_metric
        self._hosts: dict[str, Host] = {}
        self._monitors: dict[str, NodeStatusService] = {}
        #: service name → list of host names deploying it
        self._deployments: dict[str, list[str]] = {}

    # -- hosts --------------------------------------------------------------

    def add_host(self, spec: HostSpec) -> Host:
        if spec.name in self._hosts:
            raise InvalidRequestError(f"duplicate host name: {spec.name!r}")
        host = Host(
            spec.name,
            self.engine,
            cores=spec.cores,
            memory_total=spec.memory_total,
            swap_total=spec.swap_total,
        )
        self._hosts[spec.name] = host
        self._monitors[spec.name] = NodeStatusService(host, metric=self.load_metric)
        return host

    def add_hosts(self, specs: list[HostSpec]) -> list[Host]:
        return [self.add_host(spec) for spec in specs]

    def host(self, name: str) -> Host:
        try:
            return self._hosts[name]
        except KeyError:
            raise ObjectNotFoundError(name, f"no such host: {name!r}") from None

    def hosts(self) -> list[Host]:
        return [self._hosts[name] for name in sorted(self._hosts)]

    def host_names(self) -> list[str]:
        return sorted(self._hosts)

    def monitor(self, name: str) -> NodeStatusService:
        try:
            return self._monitors[name]
        except KeyError:
            raise ObjectNotFoundError(name, f"no monitor for host: {name!r}") from None

    def monitors(self) -> list[NodeStatusService]:
        return [self._monitors[name] for name in sorted(self._monitors)]

    # -- service deployment ----------------------------------------------------

    def deploy_service(self, service_name: str, host_names: list[str]) -> None:
        """Record that *service_name* is deployed on *host_names*."""
        for name in host_names:
            self.host(name)  # validate
        deployed = self._deployments.setdefault(service_name, [])
        for name in host_names:
            if name not in deployed:
                deployed.append(name)

    def deployment_hosts(self, service_name: str) -> list[str]:
        return list(self._deployments.get(service_name, ()))

    def is_deployed(self, service_name: str, host_name: str) -> bool:
        return host_name in self._deployments.get(service_name, ())

    # -- task dispatch ------------------------------------------------------------

    def submit_task(self, host_name: str, task: Task) -> bool:
        """Submit a task directly to a host (the service-invocation step)."""
        return self.host(host_name).submit(task)

    # -- observation -----------------------------------------------------------------

    def load_snapshot(self) -> dict[str, float]:
        """host → current load average, for metrics sampling."""
        return {name: host.load_average() for name, host in sorted(self._hosts.items())}

    def memory_snapshot(self) -> dict[str, int]:
        return {name: host.memory_available() for name, host in sorted(self._hosts.items())}

    def queue_snapshot(self) -> dict[str, int]:
        return {name: host.run_queue_length for name, host in sorted(self._hosts.items())}

    def total_completed(self) -> int:
        return sum(host.tasks_completed for host in self._hosts.values())

    def total_rejected(self) -> int:
        return sum(host.tasks_rejected for host in self._hosts.values())

    def __len__(self) -> int:
        return len(self._hosts)
