"""Discrete-event simulation engine.

A classic event-queue simulator: events are (time, sequence, callback)
triples in a heap; ``run_until`` advances virtual time monotonically and
fires callbacks in order.  The registry's monitoring timer (TimeHits), the
host model's task completions, and the MTC workload's arrivals all schedule
through one engine, so a whole experiment is deterministic given a seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

Callback = Callable[[], None]


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    callback: Callback = field(compare=False)
    cancelled: bool = field(compare=False, default=False)


class EventHandle:
    """Returned by ``schedule``; allows cancellation."""

    __slots__ = ("_event",)

    def __init__(self, event: _Event) -> None:
        self._event = event

    def cancel(self) -> None:
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time(self) -> float:
        return self._event.time


class SimEngine:
    """Single-threaded discrete-event engine with virtual seconds."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._queue: list[_Event] = []
        self._seq = itertools.count()
        self._event_count = 0

    @property
    def now(self) -> float:
        return self._now

    @property
    def events_processed(self) -> int:
        return self._event_count

    def schedule(self, delay: float, callback: Callback) -> EventHandle:
        """Schedule *callback* to fire ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callback) -> EventHandle:
        if time < self._now:
            raise ValueError(
                f"cannot schedule into the past (t={time} < now={self._now})"
            )
        event = _Event(time=time, seq=next(self._seq), callback=callback)
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def schedule_periodic(
        self,
        period: float,
        callback: Callback,
        *,
        first_delay: float | None = None,
    ) -> "PeriodicTask":
        """Fire *callback* every *period* seconds until stopped."""
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        task = PeriodicTask(self, period, callback)
        task.start(first_delay if first_delay is not None else period)
        return task

    # -- running -----------------------------------------------------------

    def step(self) -> bool:
        """Fire the next event; returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._event_count += 1
            event.callback()
            return True
        return False

    def run_until(self, time: float) -> None:
        """Advance to *time*, firing every event scheduled before it."""
        if time < self._now:
            raise ValueError(f"cannot run backwards (t={time} < now={self._now})")
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if head.time > time:
                break
            self.step()
        self._now = time

    def run(self, *, max_events: int | None = None) -> None:
        """Run until the queue drains (or *max_events* fired)."""
        fired = 0
        while self.step():
            fired += 1
            if max_events is not None and fired >= max_events:
                break

    def peek_time(self) -> float | None:
        """Time of the next pending event, or None."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None


class PeriodicTask:
    """A self-rescheduling periodic callback (the TimeHits timer shape)."""

    def __init__(self, engine: SimEngine, period: float, callback: Callback) -> None:
        self.engine = engine
        self.period = period
        self.callback = callback
        self._handle: EventHandle | None = None
        self._stopped = False
        self.fire_count = 0

    def start(self, first_delay: float) -> None:
        self._stopped = False
        self._handle = self.engine.schedule(first_delay, self._fire)

    def _fire(self) -> None:
        if self._stopped:
            return
        self.fire_count += 1
        self.callback()
        if not self._stopped:
            self._handle = self.engine.schedule(self.period, self._fire)

    def stop(self) -> None:
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()

    def set_period(self, period: float) -> None:
        """Reconfigure the period (takes effect at the next firing)."""
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self.period = period
