"""MTC workload generation.

Many-Task Computing (thesis §3.1) issues large numbers of short tasks whose
"primary metrics are measured in seconds".  The generator produces a
deterministic arrival schedule: Poisson (exponential inter-arrival) or
uniform arrivals, with task service demand and memory footprint drawn from
configurable distributions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.sim.task import Task
from repro.util.errors import InvalidRequestError


@dataclass(frozen=True)
class Distribution:
    """A 1-D random variate spec: kind ∈ {fixed, uniform, exponential, lognormal}."""

    kind: str
    a: float  # fixed value / low / mean / mu
    b: float = 0.0  # high / sigma

    def sample(self, rng: random.Random) -> float:
        if self.kind == "fixed":
            return self.a
        if self.kind == "uniform":
            return rng.uniform(self.a, self.b)
        if self.kind == "exponential":
            return rng.expovariate(1.0 / self.a)
        if self.kind == "lognormal":
            return rng.lognormvariate(self.a, self.b)
        raise InvalidRequestError(f"unknown distribution kind: {self.kind!r}")

    @classmethod
    def fixed(cls, value: float) -> "Distribution":
        return cls("fixed", value)

    @classmethod
    def uniform(cls, low: float, high: float) -> "Distribution":
        return cls("uniform", low, high)

    @classmethod
    def exponential(cls, mean: float) -> "Distribution":
        return cls("exponential", mean)

    @classmethod
    def lognormal(cls, mu: float, sigma: float) -> "Distribution":
        return cls("lognormal", mu, sigma)


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of one MTC workload."""

    #: mean tasks per second (Poisson arrivals)
    arrival_rate: float
    #: processor seconds demanded by each task
    cpu_seconds: Distribution = field(default_factory=lambda: Distribution.fixed(5.0))
    #: bytes held while running
    memory: Distribution = field(default_factory=lambda: Distribution.fixed(256 << 20))
    #: "poisson" or "uniform" arrival process
    arrivals: str = "poisson"
    seed: int = 0


@dataclass(frozen=True)
class Arrival:
    time: float
    task: Task


def generate_workload(spec: WorkloadSpec, *, duration: float) -> list[Arrival]:
    """Generate the full arrival schedule for [0, duration)."""
    if duration <= 0:
        raise InvalidRequestError("workload duration must be positive")
    if spec.arrival_rate <= 0:
        raise InvalidRequestError("arrival rate must be positive")
    rng = random.Random(spec.seed)
    arrivals: list[Arrival] = []
    time = 0.0
    index = 0
    while True:
        if spec.arrivals == "poisson":
            time += rng.expovariate(spec.arrival_rate)
        elif spec.arrivals == "uniform":
            time += 1.0 / spec.arrival_rate
        else:
            raise InvalidRequestError(f"unknown arrival process: {spec.arrivals!r}")
        if time >= duration:
            break
        index += 1
        cpu = max(0.01, spec.cpu_seconds.sample(rng))
        memory = max(0, int(spec.memory.sample(rng)))
        arrivals.append(
            Arrival(time=time, task=Task(cpu_seconds=cpu, memory=memory, name=f"mtc-{index}"))
        )
    return arrivals
