"""Experiment metrics: load uniformity, fairness, and response-time summaries.

The headline claim under test (thesis abstract / §5.1) is that with the
scheme "the CPU load and system memory is uniformly maintained" across
hosts.  Uniformity metrics:

* **time-averaged cross-host load std-dev** — sample every host's load
  average on a fixed grid, take the std-dev *across hosts* at each instant,
  then average over time (lower = more uniform);
* **imbalance factor** — time-average of ``max(load) / mean(load)`` (1.0 is
  perfect balance);
* **Jain fairness index** on per-host completed work, ``(Σx)² / (n·Σx²)``
  (1.0 = perfectly fair);
* **memory spread** — time-averaged cross-host std-dev of memory in use.

Plus the service-quality side: response-time mean/median/p95/max, slowdown,
makespan, and completion/rejection counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sim.cluster import Cluster
from repro.sim.engine import SimEngine
from repro.sim.task import Task


class ClusterSampler:
    """Periodic sampling of per-host load and memory-in-use."""

    def __init__(self, cluster: Cluster, engine: SimEngine, *, period: float = 5.0) -> None:
        self.cluster = cluster
        self.engine = engine
        self.period = period
        self.times: list[float] = []
        self.loads: list[list[float]] = []
        self.memory_used: list[list[int]] = []
        self._hosts = cluster.host_names()
        self._task = None

    def start(self) -> None:
        self.sample()
        self._task = self.engine.schedule_periodic(self.period, self.sample)

    def stop(self) -> None:
        if self._task is not None:
            self._task.stop()
            self._task = None

    def sample(self) -> None:
        self.times.append(self.engine.now)
        loads = self.cluster.load_snapshot()
        memory = self.cluster.memory_snapshot()
        self.loads.append([loads[h] for h in self._hosts])
        self.memory_used.append(
            [self.cluster.host(h).memory_total - memory[h] for h in self._hosts]
        )

    # -- arrays ----------------------------------------------------------------

    def load_matrix(self) -> np.ndarray:
        """(samples × hosts) load-average matrix."""
        return np.asarray(self.loads, dtype=float)

    def memory_matrix(self) -> np.ndarray:
        return np.asarray(self.memory_used, dtype=float)

    @property
    def hosts(self) -> list[str]:
        return list(self._hosts)


@dataclass(frozen=True)
class LoadUniformity:
    """Cross-host uniformity summary over one run."""

    mean_load: float
    load_stddev: float  # time-averaged cross-host std
    imbalance_factor: float  # time-averaged max/mean (1.0 = perfect)
    memory_spread: float  # time-averaged cross-host std of memory used, bytes
    per_host_mean_load: dict[str, float]

    @classmethod
    def from_sampler(cls, sampler: ClusterSampler, *, warmup: float = 0.0) -> "LoadUniformity":
        times = np.asarray(sampler.times)
        keep = times >= warmup
        loads = sampler.load_matrix()[keep]
        memory = sampler.memory_matrix()[keep]
        if loads.size == 0:
            raise ValueError("no samples after warmup")
        per_instant_std = loads.std(axis=1)
        means = loads.mean(axis=1)
        with np.errstate(divide="ignore", invalid="ignore"):
            imbalance = np.where(means > 1e-9, loads.max(axis=1) / means, 1.0)
        return cls(
            mean_load=float(loads.mean()),
            load_stddev=float(per_instant_std.mean()),
            imbalance_factor=float(imbalance.mean()),
            memory_spread=float(memory.std(axis=1).mean()),
            per_host_mean_load={
                host: float(loads[:, i].mean()) for i, host in enumerate(sampler.hosts)
            },
        )


def jain_fairness(values: list[float]) -> float:
    """Jain's fairness index: 1.0 = perfectly even, 1/n = maximally skewed."""
    x = np.asarray(values, dtype=float)
    if x.size == 0:
        raise ValueError("fairness of an empty vector is undefined")
    total_sq = x.sum() ** 2
    denom = x.size * (x**2).sum()
    if denom == 0:
        return 1.0
    return float(total_sq / denom)


@dataclass(frozen=True)
class ResponseSummary:
    """Response-time statistics over completed tasks."""

    count: int
    mean: float
    median: float
    p95: float
    max: float
    mean_slowdown: float

    @classmethod
    def from_tasks(cls, tasks: list[Task]) -> "ResponseSummary":
        finished = [t for t in tasks if t.response_time is not None]
        if not finished:
            return cls(count=0, mean=0.0, median=0.0, p95=0.0, max=0.0, mean_slowdown=0.0)
        rts = np.asarray([t.response_time for t in finished], dtype=float)
        slowdowns = np.asarray([t.slowdown for t in finished], dtype=float)
        return cls(
            count=len(finished),
            mean=float(rts.mean()),
            median=float(np.median(rts)),
            p95=float(np.percentile(rts, 95)),
            max=float(rts.max()),
            mean_slowdown=float(slowdowns.mean()),
        )


@dataclass
class RunMetrics:
    """Everything one experiment run reports."""

    policy: str
    uniformity: LoadUniformity
    responses: ResponseSummary
    fairness: float
    tasks_submitted: int
    tasks_completed: int
    tasks_rejected: int
    makespan: float
    per_host_completed: dict[str, int] = field(default_factory=dict)

    def row(self) -> dict[str, object]:
        """Flat dict for the bench table printers."""
        return {
            "policy": self.policy,
            "load_std": round(self.uniformity.load_stddev, 3),
            "imbalance": round(self.uniformity.imbalance_factor, 3),
            "fairness": round(self.fairness, 3),
            "mem_spread_MB": round(self.uniformity.memory_spread / (1 << 20), 1),
            "resp_mean_s": round(self.responses.mean, 2),
            "resp_p95_s": round(self.responses.p95, 2),
            "completed": self.tasks_completed,
            "rejected": self.tasks_rejected,
        }
