"""End-to-end experiment runner: registry + cluster + workload + metrics.

One :func:`run_experiment` call builds the whole thesis deployment
(Figure 3.7): a simulated cluster, a registry with the NodeStatus service
published per host, the application service published with its constraint
block, the TimeHits monitor, and an MTC client dispatching a workload
through registry discovery under a chosen policy.  Deterministic under the
config seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core import BalanceMode, attach_load_balancer
from repro.core.monitor import DEFAULT_PERIOD
from repro.mtc.client import MTCClient
from repro.mtc.metrics import (
    ClusterSampler,
    LoadUniformity,
    ResponseSummary,
    RunMetrics,
    jain_fairness,
)
from repro.mtc.policies import (
    ORACLE_POLICIES,
    REGISTRY_BALANCED_POLICIES,
    OracleLeastLoadedPolicy,
    make_policy,
)
from repro.mtc.workload import Distribution, WorkloadSpec, generate_workload
from repro.obs.slo import SLO
from repro.registry.server import RegistryConfig, RegistryServer
from repro.rim import Association, AssociationType, Organization, Service, ServiceBinding
from repro.sim import Cluster, HostSpec, SimEngine, Task
from repro.sim.nodestatus import nodestatus_uri
from repro.soap import RetryPolicy, SimTransport
from repro.util.clock import SimClockAdapter

#: default application-service constraint used by the load-balance benches
DEFAULT_CONSTRAINT = (
    "<constraint>"
    "<cpuLoad>load ls 4.0</cpuLoad>"
    "<memory>memory gr 512MB</memory>"
    "</constraint>"
)


def adhoc_query_mix(
    *,
    service_ids: tuple[str, ...] = (),
    name_prefixes: tuple[str, ...] = (),
    classification_nodes: tuple[str, ...] = (),
    load_ceiling: float = 2.0,
) -> list[str]:
    """The ebRS ad-hoc searches a §3.3 client runs before binding.

    Four shapes, mirroring how MTC clients actually browse the registry:
    point lookups of known services, name-prefix searches, taxonomy
    (classification) semi-joins, and a NodeState scan to eyeball cluster
    load.  Shared by the AQ-1 bench (replayed at scale against the planner)
    and :meth:`ExperimentHarness.adhoc_discovery_queries`.
    """
    queries: list[str] = []
    for service_id in service_ids:
        escaped = service_id.replace("'", "''")
        queries.append(f"SELECT * FROM Service WHERE id = '{escaped}'")
    for prefix in name_prefixes:
        escaped = prefix.replace("'", "''")
        queries.append(
            f"SELECT id, name FROM Service WHERE name LIKE '{escaped}%' ORDER BY name"
        )
    for node_id in classification_nodes:
        escaped = node_id.replace("'", "''")
        queries.append(
            "SELECT name FROM Service WHERE id IN "
            "(SELECT classifiedobject FROM Classification "
            f"WHERE classificationnode = '{escaped}')"
        )
    queries.append(
        f"SELECT HOST, LOAD FROM NodeState WHERE LOAD < {load_ceiling} ORDER BY LOAD"
    )
    return queries


@dataclass(frozen=True)
class HostFailure:
    """A crash/recovery episode injected into one host mid-run.

    Times are relative to workload start.  While down, the host rejects
    submissions, loses its running tasks, and stops answering NodeStatus.
    """

    host: str
    fail_at: float
    recover_at: float | None = None


@dataclass(frozen=True)
class BackgroundLoad:
    """External load injected on one host (what makes hosts heterogeneous)."""

    host: str
    #: tasks per second of background arrivals
    rate: float
    cpu_seconds: float = 30.0
    memory: int = 512 << 20


@dataclass(frozen=True)
class ExperimentConfig:
    """Parameters of one load-balancing experiment run."""

    policy: str = "constraint-lb"
    hosts: tuple[HostSpec, ...] = (
        HostSpec("host0.cluster", cores=2),
        HostSpec("host1.cluster", cores=2),
        HostSpec("host2.cluster", cores=2),
        HostSpec("host3.cluster", cores=2),
    )
    workload: WorkloadSpec = field(
        default_factory=lambda: WorkloadSpec(
            arrival_rate=0.4,
            cpu_seconds=Distribution.fixed(10.0),
            memory=Distribution.fixed(256 << 20),
            seed=0,
        )
    )
    duration: float = 1800.0
    monitor_period: float = DEFAULT_PERIOD
    #: what the NodeStatus LOAD field reports: "runqueue" (thesis) or "loadavg"
    load_metric: str = "runqueue"
    constraint_xml: str = DEFAULT_CONSTRAINT
    balance_mode: BalanceMode = BalanceMode.PREFER
    background: tuple[BackgroundLoad, ...] = ()
    failures: tuple[HostFailure, ...] = ()
    sample_period: float = 5.0
    warmup: float = 120.0
    #: virtual start-of-day offset in seconds (affects time-of-day constraints)
    start_of_day: float = 10 * 3600.0
    seed: int = 0
    service_name: str = "MTCService"
    organization_name: str = "MTC Organization"
    #: client-side transport retry stage (None = no retries, the seed
    #: behaviour); exercised by TimeHits sweeps against failed hosts and,
    #: with :attr:`dispatch_via_transport`, by task invocation itself
    transport_retry: RetryPolicy | None = None
    #: route task invocation through the transport mini-chain instead of
    #: submitting directly to the cluster (makes retry/backoff observable
    #: under HostFailure episodes)
    dispatch_via_transport: bool = False
    #: record per-request span trees (deterministic under the sim clock);
    #: off by default — tracing is an observability knob, not a policy one
    trace: bool = False
    #: record the per-request cost split (queue-wait/stage/hop) and the
    #: attribution metric families; off by default like tracing
    attribution: bool = False
    #: record longitudinal time series (node sweeps, request latencies)
    history: bool = False
    #: emit structured JSON log records into the bounded in-memory sink
    log: bool = False
    #: SLOs to evaluate during the run (each monitor period); their alert
    #: timeline lands in :attr:`ExperimentResult.slo_timeline`
    slos: tuple[SLO, ...] = ()
    #: follower registries tailing the primary's changelog over federation
    #: ReplicationLinks (0 = single registry, the seed behaviour); after the
    #: run the links are pumped and convergence lands in
    #: :attr:`ExperimentResult.replication`
    read_replicas: int = 0

    def with_policy(self, policy: str) -> "ExperimentConfig":
        return replace(self, policy=policy)


@dataclass
class ExperimentResult:
    config: ExperimentConfig
    metrics: RunMetrics
    dispatch_counts: dict[str, int]
    node_samples: int
    monitor_collections: int
    #: client-side retry stage accounting (transport mini-chain)
    transport_retries: int = 0
    invoke_failures: int = 0
    #: lifecycle retries suppressed by idempotency keys (exactly-once)
    idempotent_duplicates: int = 0
    endpoint_failures: dict[str, int] = field(default_factory=dict)
    #: merged registry telemetry snapshot (see RegistryServer.telemetry_snapshot)
    telemetry: dict = field(default_factory=dict)
    #: SLO alert-state transitions, in order (deterministic under the seed)
    slo_timeline: list = field(default_factory=list)
    #: final alert state per configured SLO
    slo_states: dict = field(default_factory=dict)
    #: replication-link watermarks/lag + replica convergence (read_replicas)
    replication: dict = field(default_factory=dict)


class ExperimentHarness:
    """Builds the full deployment for one config; reusable by the benches."""

    def __init__(self, config: ExperimentConfig) -> None:
        self.config = config
        self.engine = SimEngine(start=config.start_of_day)
        self.clock = SimClockAdapter(self.engine)
        # the sim clock doubles as the monotonic source, so request latency
        # accounting and span timestamps are deterministic under the seed
        self.registry = RegistryServer(
            RegistryConfig(seed=config.seed), clock=self.clock, monotonic=self.clock
        )
        self.cluster = Cluster(self.engine, load_metric=config.load_metric)
        self.cluster.add_hosts(list(config.hosts))
        self.transport = SimTransport(retry=config.transport_retry)
        if config.trace:
            self.registry.enable_tracing()
            self.transport.tracer = self.registry.telemetry.tracer
        if config.attribution:
            self.registry.enable_attribution()
        telemetry = self.registry.telemetry
        if config.history:
            telemetry.history.enabled = True
        if config.log:
            telemetry.log.enabled = True
        for slo in config.slos:
            telemetry.slos.add(slo)
        if config.slos:
            # evaluate burn rates each monitor period; transitions accumulate
            # on the engine's deterministic timeline
            self.engine.schedule_periodic(
                config.monitor_period, telemetry.slos.evaluate
            )
        self.federation = None
        self.replicas: list[RegistryServer] = []
        if config.read_replicas > 0:
            from repro.registry.federation import RegistryFederation

            self.federation = RegistryFederation("mtc-replication")
            self.federation.join(self.registry)
            for index in range(config.read_replicas):
                replica = RegistryServer(
                    RegistryConfig(
                        seed=config.seed + 1000 + index,
                        home=f"http://replica{index}.mtc:8080/omar/registry",
                    ),
                    clock=self.clock,
                    monotonic=self.clock,
                )
                self.federation.join(replica)
                self.federation.link(self.registry, replica)
                self.replicas.append(replica)
        self._register_monitors()
        self.session = self._admin_session()
        self.service_id = self._publish_services()
        if config.dispatch_via_transport:
            self._register_app_endpoints()
        self.balancer = None
        if config.policy in REGISTRY_BALANCED_POLICIES:
            self.balancer = attach_load_balancer(
                self.registry,
                self.transport,
                self.engine,
                period=config.monitor_period,
                mode=config.balance_mode,
            )
        if config.policy in ORACLE_POLICIES:
            policy = OracleLeastLoadedPolicy(self.cluster)
        else:
            policy = make_policy(config.policy, seed=config.seed)
        self.client = MTCClient(
            self.registry,
            self.cluster,
            self.engine,
            service_id=self.service_id,
            policy=policy,
            transport=self.transport if config.dispatch_via_transport else None,
        )
        self.sampler = ClusterSampler(
            self.cluster, self.engine, period=config.sample_period
        )

    # -- deployment ------------------------------------------------------------

    def _register_monitors(self) -> None:
        for monitor in self.cluster.monitors():
            self.transport.register_endpoint(
                monitor.access_uri, lambda req, m=monitor: m.invoke()
            )

    def _register_app_endpoints(self) -> None:
        """Expose each host's application service as a transport endpoint, so
        task invocation exercises the client-side retry mini-chain."""
        for host in self.cluster.host_names():
            self.transport.register_endpoint(
                f"http://{host}:8080/{self.config.service_name}/invoke",
                lambda task, h=host: self.cluster.submit_task(h, task),
            )

    def _admin_session(self):
        _, credential = self.registry.register_user(
            "mtc-admin", roles={"RegistryAdministrator"}
        )
        return self.registry.login(credential)

    def _publish_services(self) -> str:
        cfg = self.config
        ids = self.registry.ids
        org = Organization(ids.new_id(), name=cfg.organization_name)
        node_status = Service(
            ids.new_id(), name="NodeStatus", description="Service to monitor node status"
        )
        app = Service(ids.new_id(), name=cfg.service_name, description=cfg.constraint_xml)
        self.registry.lcm.submit_objects(
            self.session,
            [org, node_status, app],
            idempotency_key="mtc-publish-services",
        )
        bindings: list = []
        host_names = self.cluster.host_names()
        for host in host_names:
            bindings.append(
                ServiceBinding(
                    ids.new_id(), service=node_status.id, access_uri=nodestatus_uri(host)
                )
            )
            bindings.append(
                ServiceBinding(
                    ids.new_id(),
                    service=app.id,
                    access_uri=f"http://{host}:8080/{cfg.service_name}/invoke",
                )
            )
        bindings.append(
            Association(
                ids.new_id(),
                source_object=org.id,
                target_object=app.id,
                association_type=AssociationType.OFFERS_SERVICE,
            )
        )
        self.registry.lcm.submit_objects(
            self.session, bindings, idempotency_key="mtc-publish-bindings"
        )
        self.cluster.deploy_service("NodeStatus", host_names)
        self.cluster.deploy_service(cfg.service_name, host_names)
        return app.id

    def adhoc_discovery_queries(self) -> list[str]:
        """The ad-hoc search mix for this deployment's published services.

        Replaying these through ``registry.qm`` (e.g. once at start-up)
        warms the query-plan cache for the statements clients repeat all
        run long.
        """
        return adhoc_query_mix(
            service_ids=(self.service_id,),
            name_prefixes=(self.config.service_name[:3], "Node"),
        )

    def _schedule_failures(self) -> None:
        for failure in self.config.failures:
            host = self.cluster.host(failure.host)

            def crash(h=host, name=failure.host):
                h.crash()
                self.transport.set_host_down(name)

            self.engine.schedule_at(
                self.config.start_of_day + failure.fail_at, crash
            )
            if failure.recover_at is not None:

                def recover(h=host, name=failure.host):
                    h.recover()
                    self.transport.set_host_down(name, down=False)

                self.engine.schedule_at(
                    self.config.start_of_day + failure.recover_at, recover
                )

    def _schedule_background(self) -> None:
        for bg in self.config.background:
            host = self.cluster.host(bg.host)
            interval = 1.0 / bg.rate
            time = self.config.start_of_day + interval
            end = self.config.start_of_day + self.config.duration
            index = 0
            while time < end:
                index += 1
                self.engine.schedule_at(
                    time,
                    lambda h=host, i=index, b=bg: h.submit(
                        Task(cpu_seconds=b.cpu_seconds, memory=b.memory, name=f"bg-{h.name}-{i}")
                    ),
                )
                time += interval

    # -- run -----------------------------------------------------------------------

    def run(self) -> ExperimentResult:
        cfg = self.config
        arrivals = generate_workload(cfg.workload, duration=cfg.duration)
        shifted = [
            type(a)(time=cfg.start_of_day + a.time, task=a.task) for a in arrivals
        ]
        self.client.schedule_arrivals(shifted)
        self._schedule_background()
        self._schedule_failures()
        self.sampler.start()
        end = cfg.start_of_day + cfg.duration
        self.engine.run_until(end)
        # measurement window ends with the workload: the drain below would
        # otherwise dilute the uniformity metrics with idle samples
        self.sampler.stop()
        # drain: let in-flight tasks finish (bounded)
        self.engine.run_until(end + 10 * 3600)
        uniformity = LoadUniformity.from_sampler(
            self.sampler, warmup=cfg.start_of_day + cfg.warmup
        )
        responses = ResponseSummary.from_tasks(self.client.tasks)
        per_host_completed = {
            h.name: h.tasks_completed for h in self.cluster.hosts()
        }
        work = [h.work_done for h in self.cluster.hosts()]
        metrics = RunMetrics(
            policy=cfg.policy,
            uniformity=uniformity,
            responses=responses,
            fairness=jain_fairness(work),
            tasks_submitted=len(self.client.tasks),
            tasks_completed=self.cluster.total_completed(),
            tasks_rejected=self.cluster.total_rejected(),
            makespan=self.engine.now - cfg.start_of_day,
            per_host_completed=per_host_completed,
        )
        replication: dict = {}
        if self.federation is not None:
            pumps = 0
            while self.federation.replication_lag() > 0 and pumps < 8:
                self.federation.pump_replication()
                pumps += 1
            replication = {
                "links": [link.stats() for link in self.federation.links()],
                "lag": self.federation.replication_lag(),
                "pumps": pumps,
                "replica_objects": {
                    replica.home: replica.store.count() for replica in self.replicas
                },
                "converged": all(
                    replica.store.contains(self.service_id)
                    for replica in self.replicas
                ),
            }
        return ExperimentResult(
            config=cfg,
            metrics=metrics,
            dispatch_counts=self.client.dispatch_counts(),
            node_samples=len(self.registry.node_state),
            monitor_collections=(
                self.balancer.monitor.collections if self.balancer else 0
            ),
            transport_retries=self.transport.stats.retries,
            invoke_failures=self.client.invoke_failures,
            idempotent_duplicates=self.registry.lcm.idempotent_duplicates,
            endpoint_failures=self.transport.endpoint_failures(),
            telemetry=self.registry.telemetry_snapshot(),
            slo_timeline=list(self.registry.telemetry.slos.timeline),
            slo_states=self.registry.telemetry.slos.states(),
            replication=replication,
        )


def run_experiment(config: ExperimentConfig) -> ExperimentResult:
    """Build and run one experiment."""
    return ExperimentHarness(config).run()


def compare_policies(
    base: ExperimentConfig, policies: list[str] | None = None
) -> dict[str, ExperimentResult]:
    """Run the same workload under several policies (the LB-1 table)."""
    policies = policies or ["first-uri", "random", "round-robin", "constraint-lb"]
    return {policy: run_experiment(base.with_policy(policy)) for policy in policies}
