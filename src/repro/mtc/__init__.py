"""Many-Task Computing workload harness.

Builds the thesis' motivating application (§3.1): many short tasks
dispatched across hosts through registry discovery.  Contains the selection
policies (the no-LB / random / round-robin baselines vs the constraint
scheme), deterministic workload generation, the dispatch client, uniformity
and response metrics, and the experiment runner the benches call.
"""

from repro.mtc.client import DispatchRecord, MTCClient
from repro.mtc.experiment import (
    DEFAULT_CONSTRAINT,
    BackgroundLoad,
    ExperimentConfig,
    ExperimentHarness,
    ExperimentResult,
    HostFailure,
    compare_policies,
    run_experiment,
)
from repro.mtc.metrics import (
    ClusterSampler,
    LoadUniformity,
    ResponseSummary,
    RunMetrics,
    jain_fairness,
)
from repro.mtc.policies import (
    POLICY_FACTORIES,
    REGISTRY_BALANCED_POLICIES,
    FirstUriPolicy,
    RandomPolicy,
    RoundRobinPolicy,
    SelectionPolicy,
    make_policy,
)
from repro.mtc.workload import Arrival, Distribution, WorkloadSpec, generate_workload

__all__ = [
    "DispatchRecord",
    "MTCClient",
    "DEFAULT_CONSTRAINT",
    "BackgroundLoad",
    "ExperimentConfig",
    "ExperimentHarness",
    "ExperimentResult",
    "HostFailure",
    "compare_policies",
    "run_experiment",
    "ClusterSampler",
    "LoadUniformity",
    "ResponseSummary",
    "RunMetrics",
    "jain_fairness",
    "POLICY_FACTORIES",
    "REGISTRY_BALANCED_POLICIES",
    "FirstUriPolicy",
    "RandomPolicy",
    "RoundRobinPolicy",
    "SelectionPolicy",
    "make_policy",
    "Arrival",
    "Distribution",
    "WorkloadSpec",
    "generate_workload",
]
