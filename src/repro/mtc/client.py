"""The MTC dispatch client: discover through the registry, invoke on a host.

Reproduces the thesis Figure 3.3 data flow per task: the client queries the
registry for the application service's access URIs, applies its selection
policy (for the thesis scheme that is simply "take the first URI"), and
invokes the Web Service — here, submits the task to the chosen simulated
host.  Discovery happens **per task**, which is what makes the registry-side
reordering effective at balancing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mtc.policies import SelectionPolicy
from repro.mtc.workload import Arrival
from repro.registry.server import RegistryServer
from repro.rim.service import host_of_uri
from repro.sim.cluster import Cluster
from repro.sim.engine import SimEngine
from repro.sim.task import Task
from repro.soap.transport import SimTransport
from repro.util.errors import TransportError


@dataclass
class DispatchRecord:
    """One discovery + dispatch decision."""

    time: float
    task_name: str
    chosen_uri: str
    host: str
    accepted: bool


class MTCClient:
    """Submits an arrival schedule through registry discovery."""

    def __init__(
        self,
        registry: RegistryServer,
        cluster: Cluster,
        engine: SimEngine,
        *,
        service_id: str,
        policy: SelectionPolicy,
        transport: SimTransport | None = None,
    ) -> None:
        self.registry = registry
        self.cluster = cluster
        self.engine = engine
        self.service_id = service_id
        self.policy = policy
        #: when set, tasks are invoked through the transport's client-side
        #: mini-chain (retry/backoff/accounting) instead of direct submission
        self.transport = transport
        self.records: list[DispatchRecord] = []
        self.tasks: list[Task] = []
        self.discovery_failures = 0
        self.invoke_failures = 0

    def schedule_arrivals(self, arrivals: list[Arrival]) -> None:
        """Register every arrival with the simulation engine."""
        for arrival in arrivals:
            self.engine.schedule_at(
                arrival.time, lambda task=arrival.task: self.dispatch(task)
            )

    def dispatch(self, task: Task) -> bool:
        """Discover, choose, invoke — one task."""
        uris = self.registry.qm.get_access_uris(self.service_id)
        if not uris:
            self.discovery_failures += 1
            return False
        uri = self.policy.choose(uris)
        host = host_of_uri(uri)
        task.submitted_at = self.engine.now
        if self.transport is not None:
            try:
                accepted = bool(self.transport.request(uri, task))
            except TransportError:
                self.invoke_failures += 1
                accepted = False
        else:
            accepted = self.cluster.submit_task(host, task)
        self.tasks.append(task)
        self.records.append(
            DispatchRecord(
                time=self.engine.now,
                task_name=task.name,
                chosen_uri=uri,
                host=host,
                accepted=accepted,
            )
        )
        return accepted

    # -- accounting ---------------------------------------------------------------

    def dispatch_counts(self) -> dict[str, int]:
        """host → number of tasks sent there."""
        counts: dict[str, int] = {}
        for record in self.records:
            counts[record.host] = counts.get(record.host, 0) + 1
        return dict(sorted(counts.items()))

    def completed_tasks(self) -> list[Task]:
        return [t for t in self.tasks if t.completed_at is not None]
