"""Endpoint selection policies — the baselines the scheme is measured against.

The thesis' scheme is *transparent*: the client always takes the **first**
access URI the registry returns, and balancing happens registry-side by
reordering.  The baselines therefore combine a vanilla registry (publisher
order) with client-side pick strategies:

* ``first-uri`` — what an unmodified freebXML client does: always the first
  published URI (the overload scenario motivating §3.2);
* ``random`` — uniform random pick;
* ``round-robin`` — client-side rotation (the strongest oblivious baseline);
* ``constraint-lb`` — the thesis scheme: first URI of the *reordered* list.

Every policy sees the URI list the registry returned for this request and
returns one URI.
"""

from __future__ import annotations

import random
from typing import Protocol

from repro.util.errors import InvalidRequestError


class SelectionPolicy(Protocol):
    """Picks the endpoint to invoke from the registry's answer."""

    name: str

    def choose(self, uris: list[str]) -> str:
        ...


class FirstUriPolicy:
    """Always the first URI returned (the thesis' transparent client)."""

    name = "first-uri"

    def choose(self, uris: list[str]) -> str:
        if not uris:
            raise InvalidRequestError("no access URIs to choose from")
        return uris[0]


class RandomPolicy:
    """Uniform random pick."""

    name = "random"

    def __init__(self, seed: int | None = None) -> None:
        self._rng = random.Random(seed)

    def choose(self, uris: list[str]) -> str:
        if not uris:
            raise InvalidRequestError("no access URIs to choose from")
        return self._rng.choice(uris)


class RoundRobinPolicy:
    """Client-side rotation over the URI list (stable across reorderings).

    Rotation is keyed by sorted URI identity so a reordered answer does not
    reset the cycle.
    """

    name = "round-robin"

    def __init__(self) -> None:
        self._counter = 0

    def choose(self, uris: list[str]) -> str:
        if not uris:
            raise InvalidRequestError("no access URIs to choose from")
        ordered = sorted(uris)
        choice = ordered[self._counter % len(ordered)]
        self._counter += 1
        return choice


#: policy-name → factory; "constraint-lb" uses FirstUri because the balancing
#: is registry-side (the whole point of the scheme's transparency);
#: "constraint-lb-random" randomizes among the registry's (filtered) answer —
#: a herd-mitigation variant studied in bench LB-6.
POLICY_FACTORIES = {
    "first-uri": lambda seed: FirstUriPolicy(),
    "random": lambda seed: RandomPolicy(seed),
    "round-robin": lambda seed: RoundRobinPolicy(),
    "constraint-lb": lambda seed: FirstUriPolicy(),
    "constraint-lb-random": lambda seed: RandomPolicy(seed),
}

class OracleLeastLoadedPolicy:
    """Upper-bound baseline: perfect, zero-staleness knowledge of host queues.

    Not realizable in the thesis architecture (it would need a monitoring
    round-trip per request); used to quantify how much of the remaining gap
    to ideal is due to the periodic-sampling design.
    """

    name = "oracle-lb"

    def __init__(self, cluster) -> None:
        from repro.rim.service import host_of_uri

        self._cluster = cluster
        self._host_of = host_of_uri

    def choose(self, uris: list[str]) -> str:
        if not uris:
            raise InvalidRequestError("no access URIs to choose from")
        return min(
            uris,
            key=lambda uri: (
                self._cluster.host(self._host_of(uri)).run_queue_length,
                uris.index(uri),
            ),
        )


#: policies that require the constraint resolver attached registry-side
REGISTRY_BALANCED_POLICIES = frozenset({"constraint-lb", "constraint-lb-random"})

#: policies needing direct cluster visibility (wired specially by the harness)
ORACLE_POLICIES = frozenset({"oracle-lb"})


def make_policy(name: str, *, seed: int | None = None) -> SelectionPolicy:
    try:
        factory = POLICY_FACTORIES[name]
    except KeyError:
        raise InvalidRequestError(
            f"unknown policy {name!r}; choose from {sorted(POLICY_FACTORIES)}"
        ) from None
    return factory(seed)
