"""Security substrate: simulated PKI, keystores, authentication, XACML-lite.

Reproduces the freebXML security pipeline of thesis §2.2.3 and §3.4.2–3.4.3:
certificate issuance at user registration, keystore management on the client
(including the KeystoreMover utility and registryOperator trust import),
credential verification at session start, and attribute-based authorization
of every LifeCycleManager request.
"""

from repro.security.authn import GUEST_ALIAS, Authenticator, Session
from repro.security.certs import (
    REGISTRY_OPERATOR,
    Certificate,
    CertificateAuthority,
    Credential,
    KeyPair,
)
from repro.security.keystore import (
    Keystore,
    KeystoreMover,
    load_keystore,
    save_keystore,
)
from repro.security.xacml import (
    Decision,
    Effect,
    Policy,
    PolicyDecisionPoint,
    Request,
    Rule,
    default_policy,
)

__all__ = [
    "GUEST_ALIAS",
    "Authenticator",
    "Session",
    "REGISTRY_OPERATOR",
    "Certificate",
    "CertificateAuthority",
    "Credential",
    "KeyPair",
    "Keystore",
    "KeystoreMover",
    "load_keystore",
    "save_keystore",
    "Decision",
    "Effect",
    "Policy",
    "PolicyDecisionPoint",
    "Request",
    "Rule",
    "default_policy",
]
