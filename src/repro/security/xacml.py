"""XACML-lite: rule-based access control for registry requests.

freebXML authorizes every request with XACML 1.0 policies over Subject /
Resource / Action attributes (thesis §2.2.3).  This module implements the
decision model at the granularity the registry uses:

* a **request** is (subject attributes, resource attributes, action id);
* a **rule** matches attribute predicates and yields Permit or Deny;
* a **policy** combines rules (first-applicable);
* the **PDP** evaluates the policy set with deny-overrides across policies
  and a configurable default (deny).

The default policy set reproduces freebXML's behaviour: guests may read,
registered users may create and may modify/delete **only objects they own**,
and RegistryAdministrators may do anything.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Mapping

Attributes = Mapping[str, object]


class Effect(enum.Enum):
    PERMIT = "Permit"
    DENY = "Deny"


class Decision(enum.Enum):
    PERMIT = "Permit"
    DENY = "Deny"
    NOT_APPLICABLE = "NotApplicable"


@dataclass(frozen=True)
class Request:
    """An access-control request."""

    subject: Attributes  # e.g. {"id": user_id, "roles": {...}, "alias": ...}
    resource: Attributes  # e.g. {"id": object_id, "owner": ..., "type": ...}
    action: str  # "create" | "read" | "update" | "delete" | "approve" | ...


Matcher = Callable[[Request], bool]


@dataclass(frozen=True)
class Rule:
    """One rule: a name, a match predicate, and an effect."""

    name: str
    matches: Matcher
    effect: Effect


@dataclass
class Policy:
    """First-applicable rule combination."""

    name: str
    rules: list[Rule] = field(default_factory=list)

    def evaluate(self, request: Request) -> Decision:
        for rule in self.rules:
            if rule.matches(request):
                return Decision.PERMIT if rule.effect is Effect.PERMIT else Decision.DENY
        return Decision.NOT_APPLICABLE


class PolicyDecisionPoint:
    """Deny-overrides combination across policies; default-deny."""

    def __init__(self, policies: list[Policy] | None = None) -> None:
        self.policies = policies if policies is not None else [default_policy()]

    def decide(self, request: Request) -> Decision:
        permitted = False
        for policy in self.policies:
            decision = policy.evaluate(request)
            if decision is Decision.DENY:
                return Decision.DENY
            if decision is Decision.PERMIT:
                permitted = True
        return Decision.PERMIT if permitted else Decision.DENY

    def is_permitted(self, request: Request) -> bool:
        return self.decide(request) is Decision.PERMIT


def _roles(request: Request) -> set[str]:
    roles = request.subject.get("roles", ())
    return set(roles)  # type: ignore[arg-type]


def _is_admin(request: Request) -> bool:
    return "RegistryAdministrator" in _roles(request)


def _is_registered(request: Request) -> bool:
    return "RegistryUser" in _roles(request) or _is_admin(request)


def _owns_resource(request: Request) -> bool:
    owner = request.resource.get("owner")
    return owner is not None and owner == request.subject.get("id")


READ_ACTIONS = frozenset({"read"})
CREATE_ACTIONS = frozenset({"create"})
WRITE_ACTIONS = frozenset(
    {"update", "delete", "approve", "deprecate", "undeprecate", "relocate"}
)


#: Table 1.4 registry deployment flavours
REGISTRY_TYPES = ("public", "affiliated", "private")


def registry_type_policies(registry_type: str) -> list[Policy]:
    """Policy set for a Table 1.4 deployment flavour.

    * ``public`` — UBR-style: registry data readable by anyone (the default
      policy's guest-read rule);
    * ``affiliated`` — trading-partner network: reads require membership in
      the ``Affiliate`` group (or registration); guests are denied;
    * ``private`` — corporate registry behind the firewall: every access,
      including reads, requires an authenticated registered user.
    """
    if registry_type == "public":
        return [default_policy()]
    if registry_type == "affiliated":
        deny_guest_reads = Policy(
            name="urn:repro:policy:affiliated",
            rules=[
                Rule(
                    name="affiliates-and-members-read",
                    matches=lambda r: r.action in READ_ACTIONS
                    and ("Affiliate" in _roles(r) or _is_registered(r)),
                    effect=Effect.PERMIT,
                ),
                Rule(
                    name="guests-denied",
                    matches=lambda r: r.action in READ_ACTIONS and not _is_registered(r),
                    effect=Effect.DENY,
                ),
            ],
        )
        return [deny_guest_reads, _default_policy_without_guest_read()]
    if registry_type == "private":
        deny_unregistered = Policy(
            name="urn:repro:policy:private",
            rules=[
                Rule(
                    name="unregistered-denied",
                    matches=lambda r: not _is_registered(r),
                    effect=Effect.DENY,
                ),
                Rule(
                    name="registered-read",
                    matches=lambda r: r.action in READ_ACTIONS and _is_registered(r),
                    effect=Effect.PERMIT,
                ),
            ],
        )
        return [deny_unregistered, _default_policy_without_guest_read()]
    raise ValueError(f"unknown registry type: {registry_type!r}; use {REGISTRY_TYPES}")


def _default_policy_without_guest_read() -> Policy:
    policy = default_policy()
    policy.rules = [r for r in policy.rules if r.name != "anyone-may-read"]
    return policy


def default_policy() -> Policy:
    """The freebXML-equivalent default access policy."""
    return Policy(
        name="urn:repro:policy:default",
        rules=[
            Rule(
                name="admin-unrestricted",
                matches=_is_admin,
                effect=Effect.PERMIT,
            ),
            Rule(
                name="anyone-may-read",
                matches=lambda r: r.action in READ_ACTIONS,
                effect=Effect.PERMIT,
            ),
            Rule(
                name="registered-may-create",
                matches=lambda r: r.action in CREATE_ACTIONS and _is_registered(r),
                effect=Effect.PERMIT,
            ),
            Rule(
                name="owner-may-write",
                matches=lambda r: r.action in WRITE_ACTIONS
                and _is_registered(r)
                and _owns_resource(r),
                effect=Effect.PERMIT,
            ),
        ],
    )
