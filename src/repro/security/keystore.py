"""Client keystore and the KeystoreMover (thesis §3.4.3).

A client keystore maps an *alias* to a password-protected credential entry,
plus trusted-certificate entries (the imported ``registryOperator`` cert —
thesis' ``keytool -import -trustcacerts`` step).  The :class:`KeystoreMover`
mirrors freebXML's ``org.freebxml.omar.common.security.KeystoreMover``
command-line utility, which copies a credential from a ``.p12`` source store
into the JAXR client keystore.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.security.certs import Certificate, Credential
from repro.util.errors import AuthenticationError


@dataclass
class _Entry:
    credential: Credential
    password: str


class Keystore:
    """An alias → credential store with per-entry passwords.

    ``store_type`` mimics the JKS/PKCS12 distinction only as metadata; entry
    semantics are identical (as they are for this workflow in Java, too).
    """

    def __init__(self, *, store_type: str = "JKS", password: str = "ebxmlrr") -> None:
        self.store_type = store_type
        self.password = password
        self._entries: dict[str, _Entry] = {}
        self._trusted: dict[str, Certificate] = {}

    # -- credential entries ----------------------------------------------------

    def set_entry(self, alias: str, credential: Credential, key_password: str) -> None:
        if not alias:
            raise AuthenticationError("keystore alias must be non-empty")
        self._entries[alias] = _Entry(credential=credential, password=key_password)

    def get_entry(self, alias: str, key_password: str) -> Credential:
        entry = self._entries.get(alias)
        if entry is None:
            raise AuthenticationError(f"no keystore entry for alias {alias!r}")
        if entry.password != key_password:
            raise AuthenticationError(f"wrong key password for alias {alias!r}")
        return entry.credential

    def has_alias(self, alias: str) -> bool:
        return alias in self._entries

    def aliases(self) -> list[str]:
        return sorted(self._entries)

    # -- trusted certificates ------------------------------------------------

    def import_trusted(self, alias: str, certificate: Certificate) -> None:
        """``keytool -import -trustcacerts`` equivalent."""
        self._trusted[alias] = certificate

    def trusted(self, alias: str) -> Certificate | None:
        return self._trusted.get(alias)

    def trusts(self, certificate: Certificate) -> bool:
        return any(t.fingerprint == certificate.fingerprint for t in self._trusted.values())


def _certificate_to_dict(certificate: Certificate) -> dict:
    return {
        "subject": certificate.subject,
        "issuer": certificate.issuer,
        "publicKey": certificate.public_key,
        "signature": certificate.signature,
    }


def _certificate_from_dict(data: dict) -> Certificate:
    return Certificate(
        subject=data["subject"],
        issuer=data["issuer"],
        public_key=data["publicKey"],
        signature=data["signature"],
    )


def save_keystore(keystore: Keystore, path: str) -> None:
    """Persist a keystore to a JSON file (the simulated .jks/.p12)."""
    import json

    payload = {
        "storeType": keystore.store_type,
        "password": keystore.password,
        "entries": {
            alias: {
                "password": entry.password,
                "certificate": _certificate_to_dict(entry.credential.certificate),
                "publicKey": entry.credential.keypair.public_key,
                "privateKey": entry.credential.keypair.private_key,
            }
            for alias, entry in keystore._entries.items()
        },
        "trusted": {
            alias: _certificate_to_dict(cert)
            for alias, cert in keystore._trusted.items()
        },
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1)


def load_keystore(path: str) -> Keystore:
    """Load a keystore previously written by :func:`save_keystore`."""
    import json

    from repro.security.certs import KeyPair

    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    keystore = Keystore(
        store_type=payload["storeType"], password=payload["password"]
    )
    for alias, entry in payload["entries"].items():
        credential = Credential(
            certificate=_certificate_from_dict(entry["certificate"]),
            keypair=KeyPair(
                public_key=entry["publicKey"], private_key=entry["privateKey"]
            ),
        )
        keystore.set_entry(alias, credential, entry["password"])
    for alias, cert in payload["trusted"].items():
        keystore.import_trusted(alias, _certificate_from_dict(cert))
    return keystore


class KeystoreMover:
    """Copy a credential between keystores (the thesis' command-line step).

    Parameters mirror the thesis' option table (Table 3.2): source path /
    type / password / alias map onto the source keystore object here, and the
    destination likewise.
    """

    @staticmethod
    def move(
        *,
        source: Keystore,
        source_alias: str,
        source_key_password: str,
        destination: Keystore,
        destination_alias: str | None = None,
        destination_key_password: str | None = None,
    ) -> None:
        credential = source.get_entry(source_alias, source_key_password)
        destination.set_entry(
            destination_alias or source_alias,
            credential,
            destination_key_password or source_key_password,
        )
