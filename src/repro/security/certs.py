"""Simulated X.509 certificates and key pairs.

The thesis' user-registration wizard (§3.4.2) generates a self-signed X.509
certificate plus private key, packs them into a password-protected ``.p12``
file, and the registry later authenticates clients by verifying (a) the
certificate fingerprint it has on record and (b) the issuing
``registryOperator`` identity.  This module reproduces those *protocol*
behaviours with simulated crypto: key pairs are random identifiers,
signatures are HMAC-like digests over certificate fields — enough to make
tampering and wrong-issuer checks fail the same way the real stack does,
without shipping actual cryptography.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, replace

from repro.util.errors import AuthenticationError

REGISTRY_OPERATOR = "registryOperator"


@dataclass(frozen=True)
class KeyPair:
    """A simulated asymmetric key pair."""

    public_key: str
    private_key: str

    @classmethod
    def generate(cls, rng: random.Random | None = None) -> "KeyPair":
        rng = rng or random.Random()
        private = f"{rng.getrandbits(256):064x}"
        public = hashlib.sha256(("pub:" + private).encode()).hexdigest()
        return cls(public_key=public, private_key=private)

    def matches(self, public_key: str) -> bool:
        return hashlib.sha256(("pub:" + self.private_key).encode()).hexdigest() == public_key


def _signature(subject: str, issuer: str, public_key: str, issuer_private_key: str) -> str:
    payload = f"{subject}|{issuer}|{public_key}|{issuer_private_key}"
    return hashlib.sha256(payload.encode()).hexdigest()


@dataclass(frozen=True)
class Certificate:
    """A simulated X.509 certificate: subject, issuer, public key, signature."""

    subject: str
    issuer: str
    public_key: str
    signature: str

    @property
    def fingerprint(self) -> str:
        return hashlib.sha256(
            f"{self.subject}|{self.issuer}|{self.public_key}".encode()
        ).hexdigest()[:32]

    def verify(self, issuer_keypair: KeyPair) -> bool:
        """Check the signature against the claimed issuer's key pair."""
        expected = _signature(
            self.subject, self.issuer, self.public_key, issuer_keypair.private_key
        )
        return expected == self.signature


@dataclass(frozen=True)
class Credential:
    """A certificate + its private key (what a ``.p12`` file holds)."""

    certificate: Certificate
    keypair: KeyPair

    def tampered(self, **changes) -> "Credential":
        """Testing helper: return a credential with altered certificate fields."""
        return Credential(
            certificate=replace(self.certificate, **changes), keypair=self.keypair
        )


class CertificateAuthority:
    """The registry's certificate issuer (the ``registryOperator`` identity)."""

    def __init__(self, name: str = REGISTRY_OPERATOR, *, seed: int | None = None) -> None:
        self.name = name
        self._rng = random.Random(seed)
        self.keypair = KeyPair.generate(self._rng)
        self.certificate = self._self_signed()

    def _self_signed(self) -> Certificate:
        return Certificate(
            subject=self.name,
            issuer=self.name,
            public_key=self.keypair.public_key,
            signature=_signature(
                self.name, self.name, self.keypair.public_key, self.keypair.private_key
            ),
        )

    def issue(self, subject: str) -> Credential:
        """Issue a certificate + key pair to *subject* (user registration step 3)."""
        if not subject:
            raise AuthenticationError("certificate subject must be non-empty")
        keypair = KeyPair.generate(self._rng)
        certificate = Certificate(
            subject=subject,
            issuer=self.name,
            public_key=keypair.public_key,
            signature=_signature(
                subject, self.name, keypair.public_key, self.keypair.private_key
            ),
        )
        return Credential(certificate=certificate, keypair=keypair)
