"""Client authentication: the registry side of the credential handshake.

Thesis §3.4.2–3.4.3: the registry registers users via the wizard (issuing a
certificate), and on each new session the JAXR provider presents the client's
credential from its keystore; the registry verifies (1) the certificate
fingerprint matches its user record and (2) the certificate chains to the
``registryOperator``.  Successful authentication yields a :class:`Session`
that carries the User identity into authorization and audit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.persistence.dao import DAORegistry
from repro.rim import PersonName, User
from repro.security.certs import CertificateAuthority, Credential
from repro.util.errors import AuthenticationError
from repro.util.ids import IdFactory


@dataclass(frozen=True)
class Session:
    """An authenticated client session."""

    token: str
    user_id: str
    alias: str
    roles: frozenset[str]

    def has_role(self, role: str) -> bool:
        return role in self.roles


#: sentinel session for anonymous (read-only) access to the QueryManager
GUEST_ALIAS = "guest"


class Authenticator:
    """User registration and session establishment."""

    def __init__(
        self,
        daos: DAORegistry,
        *,
        ids: IdFactory,
        authority: CertificateAuthority | None = None,
    ) -> None:
        self.daos = daos
        self.ids = ids
        self.authority = authority or CertificateAuthority()
        #: alias → certificate fingerprint on record
        self._fingerprints: dict[str, str] = {}
        self._sessions: dict[str, Session] = {}

    # -- registration (User Registration Wizard) -------------------------------

    def register_user(
        self,
        alias: str,
        *,
        person_name: PersonName | None = None,
        roles: set[str] | None = None,
    ) -> tuple[User, Credential]:
        """Create a User record and issue its credential (wizard steps 2–4)."""
        if self.daos.users.find_by_alias(alias) is not None:
            raise AuthenticationError(f"alias already registered: {alias!r}")
        credential = self.authority.issue(alias)
        user = User(self.ids.new_id(), alias=alias, person_name=person_name)
        if roles:
            user.roles |= roles
        user.owner = user.id
        self.daos.users.insert(user)
        self._fingerprints[alias] = credential.certificate.fingerprint
        return user, credential

    # -- session establishment -----------------------------------------------

    def authenticate(self, credential: Credential) -> Session:
        """Verify a presented credential and open a session."""
        certificate = credential.certificate
        alias = certificate.subject
        user = self.daos.users.find_by_alias(alias)
        if user is None:
            raise AuthenticationError(f"unknown user alias: {alias!r}")
        recorded = self._fingerprints.get(alias)
        if recorded != certificate.fingerprint:
            raise AuthenticationError(f"certificate mismatch for alias {alias!r}")
        if certificate.issuer != self.authority.name or not certificate.verify(
            self.authority.keypair
        ):
            raise AuthenticationError(
                f"certificate for {alias!r} was not issued by {self.authority.name}"
            )
        if not credential.keypair.matches(certificate.public_key):
            raise AuthenticationError(f"private key does not match certificate for {alias!r}")
        token = self.ids.new_id()
        session = Session(
            token=token,
            user_id=user.id,
            alias=alias,
            roles=frozenset(user.roles),
        )
        self._sessions[token] = session
        return session

    def guest_session(self) -> Session:
        """Anonymous read-only session (unauthenticated QueryManager access)."""
        return Session(
            token="urn:repro:session:guest",
            user_id="urn:repro:user:guest",
            alias=GUEST_ALIAS,
            roles=frozenset({"RegistryGuest"}),
        )

    def close(self, session: Session) -> None:
        self._sessions.pop(session.token, None)

    def is_active(self, session: Session) -> bool:
        return session.token in self._sessions
