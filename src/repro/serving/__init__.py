"""The concurrent serving core: supervisor + N registry worker threads.

The paper's load-balancing scheme steers traffic at registries that must
actually absorb it; this package gives one registry process real request
concurrency.  A :class:`~repro.serving.supervisor.ServingSupervisor` owns a
bounded dispatch queue and N :class:`~repro.serving.worker.RegistryWorker`
threads, all executing the shared
:class:`~repro.registry.kernel.RegistryKernel` pipeline re-entrantly
against one concurrency-safe :class:`~repro.persistence.datastore.DataStore`
(single writer lock, atomically-published index generations, pinnable MVCC
snapshots — see that module's docstring for the full model).

Requests enter through :meth:`ServingSupervisor.submit` (a Future) or
:meth:`ServingSupervisor.call` (blocking), flow through the ``serving``
protocol edge, and land in the same telemetry the single-threaded edges
feed: per-worker pipeline-stats shards, a ``worker``-labelled request
latency histogram, and the fleet-wide ``request`` SLO.
"""

from repro.serving.cluster import ClusterConfig, ClusterSupervisor
from repro.serving.supervisor import ServingConfig, ServingSupervisor
from repro.serving.worker import RegistryWorker

__all__ = [
    "ClusterConfig",
    "ClusterSupervisor",
    "ServingConfig",
    "ServingSupervisor",
    "RegistryWorker",
]
