"""ClusterSupervisor — per-member serving fleets over a registry federation.

Composes one :class:`~repro.serving.supervisor.ServingSupervisor` per
federation member into a single serving surface: requests submitted to the
cluster are spread round-robin across the member fleets, each member's
``route`` kernel stage serves local objects directly and forwards shard
misses (see :mod:`repro.registry.federation`), and replication links keep
the members converging between pumps.

The supervisor is also the cluster's observability root.  It owns a
cluster-level :class:`~repro.obs.telemetry.Telemetry` facade with

* a ``replication.<source>-><target>.lag`` time series recorded at every
  :meth:`pump_replication` (plus ``replication.lag`` for the fleet-worst
  value),
* the ``replication-lag`` staleness SLO
  (:func:`repro.obs.slo.replication_lag_slo`) whose gauge reads the worst
  link lag — the bounded-lag eventual-consistency contract, alertable,
* a ``cluster`` snapshot source aggregating per-member serving stats, route
  counters, changelog positions, and link watermarks,

and :meth:`pipeline_stats` merges every member's per-edge/per-operation
kernel accounting next to the per-member trees — the fleet view ``repro
cluster`` prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.obs.slo import REPLICATION_LAG_SOURCE, replication_lag_slo
from repro.obs.telemetry import Telemetry
from repro.serving.supervisor import ServingConfig, ServingSupervisor
from repro.util.clock import Clock

if TYPE_CHECKING:  # pragma: no cover
    from concurrent.futures import Future

    from repro.registry.federation import RegistryFederation
    from repro.security.authn import Session


@dataclass(frozen=True)
class ClusterConfig:
    """Sizing + consistency knobs for one registry cluster."""

    #: per-member serving fleet configuration
    serving: ServingConfig = field(default_factory=ServingConfig)
    #: the bounded-lag contract: worst acceptable changelog lag, in records
    max_replication_lag: float = 64.0
    #: create the full replication mesh on start() when no links exist yet
    mesh: bool = True


class ClusterSupervisor:
    """One serving + observability surface over a federation's members."""

    def __init__(
        self,
        federation: "RegistryFederation",
        config: ClusterConfig | None = None,
        *,
        telemetry: Telemetry | None = None,
        clock: Clock | None = None,
    ) -> None:
        self.federation = federation
        self.config = config or ClusterConfig()
        self.telemetry = telemetry or Telemetry(clock=clock, history=True)
        self._supervisors: dict[str, ServingSupervisor] = {}
        self._round_robin = 0
        self.started = False
        self.telemetry.register_source("cluster", self.cluster_stats)
        self.telemetry.slos.add(
            replication_lag_slo(threshold=self.config.max_replication_lag)
        )
        self.telemetry.slos.register_gauge(
            REPLICATION_LAG_SOURCE, lambda: float(self.federation.replication_lag())
        )

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "ClusterSupervisor":
        if self.started:
            return self
        if self.config.mesh and not self.federation.links():
            self.federation.link_all()
        for registry in self.federation.members():
            supervisor = ServingSupervisor(registry, self.config.serving)
            self._supervisors[registry.home] = supervisor
            supervisor.start()
        self.started = True
        return self

    def stop(self) -> None:
        if not self.started:
            return
        for supervisor in self._supervisors.values():
            supervisor.stop()
        self.started = False

    def close(self) -> None:
        """Stop every member fleet and unmount all telemetry sources."""
        self.stop()
        for supervisor in self._supervisors.values():
            supervisor.close()
        self._supervisors.clear()
        self.telemetry.unregister_source("cluster")

    def __enter__(self) -> "ClusterSupervisor":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- member access ---------------------------------------------------------

    def homes(self) -> list[str]:
        return sorted(self._supervisors)

    def supervisor(self, home: str) -> ServingSupervisor | None:
        return self._supervisors.get(home)

    def register_session(self, session: "Session") -> None:
        """Make one session token valid at every member's serving edge."""
        for supervisor in self._supervisors.values():
            supervisor.register_session(session)

    # -- admission -------------------------------------------------------------

    def submit(self, **kwargs: Any) -> "Future":
        """Enqueue one request on the next member, round-robin.

        The chosen member serves or forwards per its ``route`` stage, so the
        caller needs no placement knowledge — any member is a valid edge.
        """
        if not self.started:
            raise RuntimeError("ClusterSupervisor is not started")
        homes = self.homes()
        home = homes[self._round_robin % len(homes)]
        self._round_robin += 1
        return self._supervisors[home].submit(**kwargs)

    def call(self, *, timeout: float | None = None, **kwargs: Any) -> Any:
        return self.submit(**kwargs).result(timeout)

    def drain(self) -> None:
        for supervisor in self._supervisors.values():
            supervisor.drain()

    # -- replication -----------------------------------------------------------

    def pump_replication(self, max_records: int | None = None) -> dict[str, int]:
        """Pump every link once; record lag series and re-evaluate the SLO."""
        applied = self.federation.pump_replication(max_records)
        history = self.telemetry.history
        worst = 0
        for link in self.federation.links():
            lag = link.lag()
            worst = max(worst, lag)
            history.record(
                f"replication.{link.source.home}->{link.target.home}.lag", float(lag)
            )
        history.record("replication.lag", float(worst))
        if self.telemetry.slos.active:
            self.telemetry.slos.evaluate()
        return applied

    def pump_until_converged(self, *, max_pumps: int = 16) -> int:
        """Pump repeatedly until every link's lag is zero; returns pump count.

        Applying a record to a follower appends to the follower's own
        changelog, so after one mesh pass the reverse links lag by records
        they will only *filter* (non-native homes never re-replicate) — a
        second pass drains them.  The mesh therefore converges in a small
        number of passes; ``max_pumps`` bounds the loop regardless.
        """
        pumps = 0
        while self.federation.replication_lag() > 0 and pumps < max_pumps:
            self.pump_replication()
            pumps += 1
        return pumps

    def replication_lag(self) -> int:
        return self.federation.replication_lag()

    # -- surfaces --------------------------------------------------------------

    def cluster_stats(self) -> dict[str, Any]:
        """The ``cluster`` telemetry source: members, links, shard ring."""
        members: dict[str, Any] = {}
        for home in sorted(self._supervisors):
            supervisor = self._supervisors[home]
            registry = supervisor.registry
            router = self.federation.router_for(home)
            members[home] = {
                "serving": supervisor.serving_stats(),
                "route": router.stats() if router is not None else {},
                "objects": registry.store.count(),
                "changelog": registry.store.changelog.stats(),
                "attribution": registry.telemetry.attribution_stats(),
            }
        return {
            "started": self.started,
            "members": members,
            "shard": self.federation.shard_map.stats(),
            "replication": [link.stats() for link in self.federation.links()],
            "replication_lag": self.federation.replication_lag(),
            "max_replication_lag": self.config.max_replication_lag,
        }

    def pipeline_stats(self) -> dict[str, Any]:
        """Per-member kernel accounting plus a cluster-merged total.

        ``per_member`` keys each member's ``pipeline_stats()`` tree by home;
        ``total`` folds them into one per-edge/per-operation tree (counts,
        faults and latency totals sum; min/max latencies combine), so the
        cluster reads like one big registry.
        """
        per_member = {
            registry.home: registry.pipeline_stats()
            for registry in self.federation.members()
        }
        total: dict[str, dict[str, dict[str, Any]]] = {}
        for tree in per_member.values():
            for edge, ops in tree.items():
                out = total.setdefault(edge, {})
                for op, snap in ops.items():
                    agg = out.get(op)
                    if agg is None:
                        out[op] = dict(snap, fault_codes=dict(snap["fault_codes"]))
                        continue
                    agg["count"] += snap["count"]
                    agg["faults"] += snap["faults"]
                    agg["total_latency_s"] += snap["total_latency_s"]
                    agg["min_latency_s"] = min(agg["min_latency_s"], snap["min_latency_s"])
                    agg["max_latency_s"] = max(agg["max_latency_s"], snap["max_latency_s"])
                    for code, n in snap["fault_codes"].items():
                        agg["fault_codes"][code] = agg["fault_codes"].get(code, 0) + n
        for ops in total.values():
            for agg in ops.values():
                agg["mean_latency_s"] = (
                    agg["total_latency_s"] / agg["count"] if agg["count"] else 0.0
                )
        return {"per_member": per_member, "total": total}
