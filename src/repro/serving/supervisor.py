"""ServingSupervisor — bounded dispatch queue in front of N worker threads.

The supervisor plays the acceptor role of a threaded registry server: it
owns one bounded :class:`queue.Queue`, spawns ``config.workers``
:class:`~repro.serving.worker.RegistryWorker` threads against the shared
kernel, and exposes three admission surfaces:

* :meth:`submit` — enqueue and return a :class:`concurrent.futures.Future`
  (blocks while the queue is full, i.e. applies backpressure);
* :meth:`try_submit` — non-blocking admission; a full queue rejects the
  request (counted in ``rejected``) and returns ``None``, which is the
  load-shedding behaviour a saturated registry node exhibits to the
  paper's balancer;
* :meth:`call` — submit and wait, for callers that want synchronous
  semantics over the concurrent core.

Requests execute through the ``serving`` protocol edge, which follows the
SOAP edge's session discipline: an explicit token resolves against
sessions registered via :meth:`register_session`, everything else falls
back to the guest session unless the operation requires authentication.
Faults map through :class:`~repro.soap.envelope.SoapFault` so a serving
response is shaped exactly like its single-threaded SOAP twin — that is
what the benchmark's parity assertion compares.

The supervisor registers a ``serving`` telemetry source so ``repro stats``
and ``/metrics``-adjacent snapshots see queue depth, admission counters,
and per-worker served counts alongside the per-worker pipeline shards the
kernel already maintains.
"""

from __future__ import annotations

import queue
from concurrent.futures import Future
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.registry.kernel import EdgeProfile, OperationSpec, RequestContext
from repro.serving.worker import SHUTDOWN, RegistryWorker, WorkItem
from repro.soap.envelope import SoapFault
from repro.util.errors import AuthenticationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.registry.server import RegistryServer
    from repro.security.authn import Session


@dataclass(frozen=True)
class ServingConfig:
    """Sizing knobs for the serving core."""

    #: worker threads sharing the kernel
    workers: int = 4
    #: dispatch queue bound; submissions beyond it block (submit) or shed
    #: (try_submit)
    queue_capacity: int = 1024
    #: simulated per-request wire/IO seconds spent off-CPU in the worker
    wire_delay_s: float = 0.0


class ServingSupervisor:
    """Owns the dispatch queue and worker fleet for one registry."""

    def __init__(
        self, registry: "RegistryServer", config: ServingConfig | None = None
    ) -> None:
        self.registry = registry
        self.config = config or ServingConfig()
        if self.config.workers < 1:
            raise ValueError("ServingConfig.workers must be >= 1")
        self.kernel = registry.kernel
        self._queue: "queue.Queue[WorkItem | None]" = queue.Queue(
            maxsize=self.config.queue_capacity
        )
        self._workers: list[RegistryWorker] = []
        #: token → session, maintained via register_session (SOAP discipline)
        self._sessions: dict[str, "Session"] = {}
        self.edge = EdgeProfile(
            name="serving",
            authenticate=self._authenticate,
            fault_mapper=SoapFault.from_error,
        )
        self.accepted = 0
        self.rejected = 0
        #: deepest queue observed at admission (benign races may undercount
        #: by a submission or two; the saturation signal survives)
        self.queue_depth_high_water = 0
        self.started = False
        from repro.obs.adapters import serving_collector

        registry.telemetry.register_source(
            "serving", self.serving_stats, collector=serving_collector(self)
        )

    # -- session plumbing ------------------------------------------------------

    def register_session(self, session: "Session") -> None:
        self._sessions[session.token] = session

    def _authenticate(self, ctx: RequestContext, spec: OperationSpec) -> "Session":
        token = ctx.token
        if token and token in self._sessions:
            return self._sessions[token]
        if spec.requires_session:
            raise AuthenticationError(
                "serving edge write access requires a registered session"
            )
        return self.registry.guest()

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "ServingSupervisor":
        if self.started:
            return self
        self._workers = [
            RegistryWorker(
                f"worker-{index}",
                self.kernel,
                self._queue,
                wire_delay_s=self.config.wire_delay_s,
            )
            for index in range(self.config.workers)
        ]
        for worker in self._workers:
            worker.start()
        self.started = True
        return self

    def stop(self, *, timeout: float | None = 10.0) -> None:
        """Drain the queue, retire every worker, and unblock pending futures."""
        if not self.started:
            return
        for _ in self._workers:
            self._queue.put(SHUTDOWN)
        for worker in self._workers:
            worker.join(timeout)
        self.started = False

    def __enter__(self) -> "ServingSupervisor":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    def close(self) -> None:
        """Stop the fleet and unmount the telemetry source."""
        self.stop()
        self.registry.telemetry.unregister_source("serving")

    # -- admission -------------------------------------------------------------

    def _item(self, kwargs: dict[str, Any]) -> WorkItem:
        if not self.started:
            raise RuntimeError("ServingSupervisor is not started")
        # the enqueue stamp the picking worker turns into queue_wait
        return WorkItem(
            edge=self.edge, kwargs=kwargs, enqueued_at=self.kernel.clock.now()
        )

    def _note_depth(self) -> None:
        depth = self._queue.qsize()
        if depth > self.queue_depth_high_water:
            self.queue_depth_high_water = depth

    def submit(self, **kwargs: Any) -> Future:
        """Enqueue one request (kernel.execute kwargs); blocks when full."""
        item = self._item(kwargs)
        self._queue.put(item)
        self.accepted += 1
        self._note_depth()
        return item.future

    def try_submit(self, **kwargs: Any) -> Future | None:
        """Non-blocking admission: ``None`` (and a shed count) when full."""
        item = self._item(kwargs)
        try:
            self._queue.put_nowait(item)
        except queue.Full:
            self.rejected += 1
            return None
        self.accepted += 1
        self._note_depth()
        return item.future

    def call(self, *, timeout: float | None = None, **kwargs: Any) -> Any:
        """Submit and wait: synchronous semantics over the concurrent core."""
        return self.submit(**kwargs).result(timeout)

    def drain(self) -> None:
        """Block until every accepted request has been executed."""
        self._queue.join()

    # -- surfaces --------------------------------------------------------------

    def serving_stats(self) -> dict[str, Any]:
        """The ``serving`` telemetry source: fleet + admission counters."""
        waits = [
            (worker.queue_wait_count, worker.queue_wait_total_s, worker.queue_wait_max_s)
            for worker in self._workers
        ]
        wait_count = sum(count for count, _, _ in waits)
        return {
            "workers": len(self._workers),
            "started": self.started,
            "queue_depth": self._queue.qsize(),
            "queue_depth_high_water": self.queue_depth_high_water,
            "queue_capacity": self.config.queue_capacity,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "wire_delay_s": self.config.wire_delay_s,
            "served_per_worker": {
                worker.label: worker.requests_served for worker in self._workers
            },
            "queue_wait": {
                "count": wait_count,
                "total_s": sum(total for _, total, _ in waits),
                "max_s": max((peak for _, _, peak in waits), default=0.0),
                "mean_s": (
                    sum(total for _, total, _ in waits) / wait_count
                    if wait_count
                    else 0.0
                ),
            },
        }
