"""RegistryWorker — one serving thread executing the shared kernel pipeline.

A worker is deliberately thin: it declares its worker label (which threads
pipeline-stats shards, histogram labels, and structured-log fields through
the whole observability stack), then loops taking
:class:`WorkItem` entries off the supervisor's queue and running them
through ``kernel.execute``.  The kernel pipeline is re-entrant — request
ids, span stacks, and stats shards are all per-thread — so N workers share
one kernel and one registry without coordination beyond the queue itself.

``wire_delay_s`` simulates the per-request wire/IO time a real deployment
spends off-CPU (``time.sleep`` releases the GIL), which is what lets the
serving benchmark show throughput scaling with worker count even though
pure-Python compute serializes on the interpreter lock.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.util.workers import set_worker_label

if TYPE_CHECKING:  # pragma: no cover
    from repro.registry.kernel import EdgeProfile, RegistryKernel


@dataclass
class WorkItem:
    """One queued request: the kernel-execute arguments plus its Future.

    ``enqueued_at`` is stamped from the kernel clock at admission; the
    worker that picks the item up turns it into the request's queue-wait
    cost component.
    """

    edge: "EdgeProfile"
    kwargs: dict[str, Any]
    future: Future = field(default_factory=Future)
    enqueued_at: float | None = None


#: queue sentinel telling a worker to exit its loop
SHUTDOWN = None


class RegistryWorker:
    """One serving thread: label, queue loop, kernel execution."""

    def __init__(
        self,
        label: str,
        kernel: "RegistryKernel",
        work_queue: "queue.Queue[WorkItem | None]",
        *,
        wire_delay_s: float = 0.0,
    ) -> None:
        self.label = label
        self.kernel = kernel
        self.queue = work_queue
        self.wire_delay_s = wire_delay_s
        self.requests_served = 0
        # queue-wait aggregates are only ever written by this worker's own
        # thread, so they need no lock; the supervisor snapshots them
        self.queue_wait_count = 0
        self.queue_wait_total_s = 0.0
        self.queue_wait_max_s = 0.0
        self.thread = threading.Thread(target=self._run, name=label, daemon=True)

    def start(self) -> None:
        self.thread.start()

    def join(self, timeout: float | None = None) -> None:
        self.thread.join(timeout)

    @property
    def alive(self) -> bool:
        return self.thread.is_alive()

    def _measure_queue_wait(self, item: WorkItem) -> None:
        """Turn the enqueue stamp into queue-wait accounting + request tags."""
        wait = self.kernel.clock.now() - item.enqueued_at
        if wait < 0.0:
            wait = 0.0
        self.queue_wait_count += 1
        self.queue_wait_total_s += wait
        if wait > self.queue_wait_max_s:
            self.queue_wait_max_s = wait
        telemetry = self.kernel.telemetry
        if telemetry is not None:
            telemetry.record_queue_wait(self.label, wait)
        # ride the wait (and the simulated wire time) into the kernel's
        # per-request tag bag so the attribution split can include them
        tags = item.kwargs.get("tags")
        tags = dict(tags) if tags else {}
        tags["queue_wait_s"] = wait
        if self.wire_delay_s > 0.0:
            tags["wire_delay_s"] = self.wire_delay_s
        item.kwargs["tags"] = tags

    def _run(self) -> None:
        set_worker_label(self.label)
        while True:
            item = self.queue.get()
            if item is SHUTDOWN:
                self.queue.task_done()
                return
            try:
                if item.enqueued_at is not None:
                    self._measure_queue_wait(item)
                if self.wire_delay_s > 0.0:
                    # simulated wire/IO time; sleeps release the GIL, so
                    # other workers compute while this request "transmits"
                    time.sleep(self.wire_delay_s)
                result = self.kernel.execute(item.edge, **item.kwargs)
            except BaseException as error:  # noqa: BLE001 - delivered via Future
                item.future.set_exception(error)
            else:
                item.future.set_result(result)
            finally:
                self.requests_served += 1
                self.queue.task_done()
