"""A miniature UDDI v3 registry — the thesis' comparison substrate.

Chapter 1 of the thesis spends half its length contrasting ebXML registries
against UDDI (Table 1.1's four-page feature matrix, the data structures of
Figures 1.6–1.11, the nine API sets of §1.3.1.5).  This package implements
UDDI at exactly the fidelity that comparison needs: the ~6 metadata classes,
the fixed-form inquiry API, two-sided publisherAssertions, auth tokens,
pull-model subscriptions, and wholesale replication — so the Table 1.1 bench
can probe both registries with runnable code instead of prose.
"""

from repro.uddi.model import (
    CANONICAL_TMODELS,
    BindingTemplate,
    BusinessEntity,
    BusinessService,
    CategoryBag,
    IdentifierBag,
    KeyedReference,
    PublisherAssertion,
    TModel,
)
from repro.uddi.blue_pages import (
    BluePages,
    PropertyFilter,
    PropertyType,
    ServiceProperty,
)
from repro.uddi.registry import ChangeRecord, UddiRegistry, UddiSubscription

__all__ = [
    "CANONICAL_TMODELS",
    "BindingTemplate",
    "BusinessEntity",
    "BusinessService",
    "CategoryBag",
    "IdentifierBag",
    "KeyedReference",
    "PublisherAssertion",
    "TModel",
    "ChangeRecord",
    "UddiRegistry",
    "UddiSubscription",
    "BluePages",
    "PropertyFilter",
    "PropertyType",
    "ServiceProperty",
]
