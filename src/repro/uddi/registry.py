"""A UDDI v3 registry: inquiry, publication, security, and subscription APIs.

Implements the API sets the thesis enumerates in §1.3.1.5 at the fidelity
Table 1.1 compares against:

* **Security API** — ``get_authToken`` / ``discard_authToken``;
* **Publication API** — ``save_business/service/binding/tModel``,
  ``delete_*``, publisherAssertion management (two-sided visibility);
* **Inquiry API** — ``find_business/service/binding/tModel`` (name prefix +
  category matching — UDDI's *fixed* query forms, deliberately not ad hoc
  SQL), ``get_*Detail`` operations, ``find_relatedBusinesses``;
* **Subscription API** — save/delete subscription + get_subscriptionResults
  over a change log (UDDI's polling model, vs ebXML's push notification).

tModel deletion is *logical* (hidden, not destroyed), per the UDDI spec.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.uddi.model import (
    CANONICAL_TMODELS,
    BindingTemplate,
    BusinessEntity,
    BusinessService,
    KeyedReference,
    PublisherAssertion,
    TModel,
    require_key,
)
from repro.util.errors import AuthenticationError, ObjectNotFoundError
from repro.util.ids import IdFactory


@dataclass(frozen=True)
class ChangeRecord:
    """One entry in the registry's change log (feeds subscriptions/replication)."""

    sequence: int
    operation: str  # "save" | "delete"
    entity_kind: str  # "business" | "service" | "binding" | "tModel"
    key: str
    publisher: str


@dataclass
class UddiSubscription:
    subscription_key: str
    publisher: str
    #: filter: entity kind of interest ("business", "service", …, or "*")
    entity_kind: str = "*"
    #: change-log sequence already consumed
    last_seen: int = 0


class UddiRegistry:
    """One UDDI node (thesis Table 1.4's corporate/private flavour)."""

    def __init__(self, *, name: str = "uddi-node", seed: int | None = None) -> None:
        self.name = name
        self.ids = IdFactory(seed)
        self._businesses: dict[str, BusinessEntity] = {}
        self._tmodels: dict[str, TModel] = {}
        self._assertions: list[tuple[str, PublisherAssertion]] = []  # (publisher, assertion)
        self._tokens: dict[str, str] = {}  # token → publisher id
        self._publishers: dict[str, str] = {}  # publisher id → password
        self._owners: dict[str, str] = {}  # entity key → publisher id
        self._change_log: list[ChangeRecord] = []
        self._subscriptions: dict[str, UddiSubscription] = {}
        for key, name_ in CANONICAL_TMODELS.items():
            self._tmodels[key] = TModel(tmodel_key=key, name=name_)

    # -- security API -------------------------------------------------------

    def register_publisher(self, publisher: str, password: str) -> None:
        if publisher in self._publishers:
            raise AuthenticationError(f"publisher already registered: {publisher!r}")
        self._publishers[publisher] = password

    def get_auth_token(self, publisher: str, password: str) -> str:
        if self._publishers.get(publisher) != password:
            raise AuthenticationError(f"bad credentials for publisher {publisher!r}")
        token = self.ids.new_id()
        self._tokens[token] = publisher
        return token

    def discard_auth_token(self, token: str) -> None:
        self._tokens.pop(token, None)

    def _publisher(self, token: str) -> str:
        publisher = self._tokens.get(token)
        if publisher is None:
            raise AuthenticationError("invalid or expired auth token")
        return publisher

    def _check_owner(self, token: str, key: str) -> str:
        publisher = self._publisher(token)
        owner = self._owners.get(key)
        if owner is not None and owner != publisher:
            raise AuthenticationError(
                f"publisher {publisher!r} does not own entity {key}"
            )
        return publisher

    def _log(self, operation: str, kind: str, key: str, publisher: str) -> None:
        self._change_log.append(
            ChangeRecord(
                sequence=len(self._change_log) + 1,
                operation=operation,
                entity_kind=kind,
                key=key,
                publisher=publisher,
            )
        )

    # -- publication API -----------------------------------------------------------

    def save_business(
        self, token: str, name: str, *, description: str = "", business_key: str | None = None
    ) -> BusinessEntity:
        key = business_key or self.ids.new_id()
        publisher = self._check_owner(token, key)
        existing = self._businesses.get(key)
        if existing is None:
            entity = BusinessEntity(business_key=key, name=name, description=description)
            self._businesses[key] = entity
            self._owners[key] = publisher
        else:
            existing.name = name
            existing.description = description
            entity = existing
        self._log("save", "business", key, publisher)
        return entity

    def save_service(
        self, token: str, business_key: str, name: str, *, description: str = ""
    ) -> BusinessService:
        publisher = self._check_owner(token, business_key)
        business = self._require_business(business_key)
        service = BusinessService(
            service_key=self.ids.new_id(),
            business_key=business_key,
            name=name,
            description=description,
        )
        business.services.append(service)
        self._owners[service.service_key] = publisher
        self._log("save", "service", service.service_key, publisher)
        return service

    def save_binding(
        self,
        token: str,
        service_key: str,
        access_point: str,
        *,
        tmodel_keys: list[str] | None = None,
    ) -> BindingTemplate:
        publisher = self._check_owner(token, service_key)
        service = self._require_service(service_key)
        binding = BindingTemplate(
            binding_key=self.ids.new_id(),
            service_key=service_key,
            access_point=access_point,
            tmodel_keys=list(tmodel_keys or ()),
        )
        service.binding_templates.append(binding)
        self._owners[binding.binding_key] = publisher
        self._log("save", "binding", binding.binding_key, publisher)
        return binding

    def save_tmodel(self, token: str, name: str, *, overview_url: str = "") -> TModel:
        publisher = self._publisher(token)
        tmodel = TModel(tmodel_key=self.ids.new_id(), name=name, overview_url=overview_url)
        self._tmodels[tmodel.tmodel_key] = tmodel
        self._owners[tmodel.tmodel_key] = publisher
        self._log("save", "tModel", tmodel.tmodel_key, publisher)
        return tmodel

    def delete_business(self, token: str, business_key: str) -> None:
        publisher = self._check_owner(token, business_key)
        business = self._require_business(business_key)
        del self._businesses[business_key]
        self._log("delete", "business", business_key, publisher)

    def delete_service(self, token: str, service_key: str) -> None:
        publisher = self._check_owner(token, service_key)
        service = self._require_service(service_key)
        business = self._require_business(service.business_key)
        business.services.remove(service)
        self._log("delete", "service", service_key, publisher)

    def delete_binding(self, token: str, binding_key: str) -> None:
        publisher = self._check_owner(token, binding_key)
        for business in self._businesses.values():
            for service in business.services:
                for binding in service.binding_templates:
                    if binding.binding_key == binding_key:
                        service.binding_templates.remove(binding)
                        self._log("delete", "binding", binding_key, publisher)
                        return
        raise ObjectNotFoundError(binding_key)

    def delete_tmodel(self, token: str, tmodel_key: str) -> None:
        """Logical deletion: hidden from finds, still resolvable by key."""
        publisher = self._check_owner(token, tmodel_key)
        tmodel = self._tmodels.get(tmodel_key)
        if tmodel is None:
            raise ObjectNotFoundError(tmodel_key)
        tmodel.deleted = True
        self._log("delete", "tModel", tmodel_key, publisher)

    # -- publisher assertions -----------------------------------------------------------

    def add_publisher_assertion(self, token: str, assertion: PublisherAssertion) -> None:
        publisher = self._publisher(token)
        if publisher not in (
            self._owners.get(assertion.from_key),
            self._owners.get(assertion.to_key),
        ):
            raise AuthenticationError(
                "publisher must own one end of the asserted relationship"
            )
        self._assertions.append((publisher, assertion))

    def delete_publisher_assertion(self, token: str, assertion: PublisherAssertion) -> None:
        publisher = self._publisher(token)
        entry = (publisher, assertion)
        if entry not in self._assertions:
            raise ObjectNotFoundError("publisherAssertion")
        self._assertions.remove(entry)

    def get_assertion_status(self, from_key: str, to_key: str) -> str:
        """'complete' when both sides asserted, else which side is missing."""
        sides = {
            self._owners.get(a.from_key) == p or self._owners.get(a.to_key) == p
            for p, a in self._assertions
            if a.from_key == from_key and a.to_key == to_key
        }
        publishers = {
            p
            for p, a in self._assertions
            if a.from_key == from_key and a.to_key == to_key
        }
        from_owner = self._owners.get(from_key)
        to_owner = self._owners.get(to_key)
        if from_owner in publishers and to_owner in publishers:
            return "status:complete"
        if from_owner in publishers:
            return "status:toKey_incomplete"
        if to_owner in publishers:
            return "status:fromKey_incomplete"
        return "status:none"

    def find_related_businesses(self, business_key: str) -> list[BusinessEntity]:
        """Businesses whose relationship with *business_key* is complete."""
        related: list[BusinessEntity] = []
        seen: set[str] = set()
        for _, assertion in self._assertions:
            if business_key not in (assertion.from_key, assertion.to_key):
                continue
            other = (
                assertion.to_key
                if assertion.from_key == business_key
                else assertion.from_key
            )
            pair = (assertion.from_key, assertion.to_key)
            if self.get_assertion_status(*pair) != "status:complete":
                continue
            if other not in seen and other in self._businesses:
                seen.add(other)
                related.append(self._businesses[other])
        return related

    # -- inquiry API (fixed query forms — deliberately not ad hoc) ----------------------

    def find_business(
        self, *, name_prefix: str = "", category: KeyedReference | None = None
    ) -> list[BusinessEntity]:
        out = []
        for business in self._businesses.values():
            if name_prefix and not business.name.startswith(name_prefix):
                continue
            if category is not None and not business.category_bag.matches(
                category.tmodel_key, category.key_value
            ):
                continue
            out.append(business)
        return sorted(out, key=lambda b: b.name)

    def find_service(
        self, *, name_prefix: str = "", business_key: str | None = None
    ) -> list[BusinessService]:
        out = []
        for business in self._businesses.values():
            if business_key and business.business_key != business_key:
                continue
            for service in business.services:
                if name_prefix and not service.name.startswith(name_prefix):
                    continue
                out.append(service)
        return sorted(out, key=lambda s: s.name)

    def find_binding(self, service_key: str) -> list[BindingTemplate]:
        return list(self._require_service(service_key).binding_templates)

    def find_tmodel(self, *, name_prefix: str = "") -> list[TModel]:
        return sorted(
            (
                t
                for t in self._tmodels.values()
                if not t.deleted and t.name.startswith(name_prefix)
            ),
            key=lambda t: t.name,
        )

    def get_business_detail(self, business_key: str) -> BusinessEntity:
        return self._require_business(business_key)

    def get_service_detail(self, service_key: str) -> BusinessService:
        return self._require_service(service_key)

    def get_tmodel_detail(self, tmodel_key: str) -> TModel:
        tmodel = self._tmodels.get(tmodel_key)
        if tmodel is None:
            raise ObjectNotFoundError(tmodel_key)
        return tmodel

    # -- subscription API (polling model) -------------------------------------------------

    def save_subscription(self, token: str, *, entity_kind: str = "*") -> UddiSubscription:
        publisher = self._publisher(token)
        subscription = UddiSubscription(
            subscription_key=self.ids.new_id(),
            publisher=publisher,
            entity_kind=entity_kind,
            last_seen=len(self._change_log),
        )
        self._subscriptions[subscription.subscription_key] = subscription
        return subscription

    def delete_subscription(self, token: str, subscription_key: str) -> None:
        self._publisher(token)
        self._subscriptions.pop(subscription_key, None)

    def get_subscription_results(self, token: str, subscription_key: str) -> list[ChangeRecord]:
        """UDDI's pull model: changes since the last poll."""
        self._publisher(token)
        subscription = self._subscriptions.get(subscription_key)
        if subscription is None:
            raise ObjectNotFoundError(subscription_key)
        fresh = [
            record
            for record in self._change_log[subscription.last_seen :]
            if subscription.entity_kind in ("*", record.entity_kind)
        ]
        subscription.last_seen = len(self._change_log)
        return fresh

    # -- replication (wholesale, per Table 1.1's "all data, all the time") -------------------

    def replicate_to(self, other: "UddiRegistry") -> int:
        """Copy the full change-relevant state into *other* (UBR-style sync)."""
        import copy

        count = 0
        for key, business in self._businesses.items():
            other._businesses[key] = copy.deepcopy(business)
            count += 1
        for key, tmodel in self._tmodels.items():
            if key not in other._tmodels:
                other._tmodels[key] = copy.deepcopy(tmodel)
        return count

    # -- internals -----------------------------------------------------------------------

    def _require_business(self, key: str) -> BusinessEntity:
        business = self._businesses.get(require_key(key, "businessEntity"))
        if business is None:
            raise ObjectNotFoundError(key)
        return business

    def _require_service(self, key: str) -> BusinessService:
        for business in self._businesses.values():
            service = business.service(key)
            if service is not None:
                return service
        raise ObjectNotFoundError(key)
