"""UDDI v3 data structures (thesis §1.3.1.4, Figures 1.6–1.11).

The comparison registry for Table 1.1: businessEntity / businessService /
bindingTemplate / tModel / publisherAssertion, with categoryBag and
identifierBag holding keyedReferences.  The model deliberately mirrors
UDDI's limitations that Table 1.1 calls out — ~6 metadata classes, no
repository, type-oriented rather than object-oriented API — so the feature
matrix bench can probe both registries honestly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.errors import InvalidRequestError


@dataclass(frozen=True)
class KeyedReference:
    """A (tModelKey, keyName, keyValue) triple inside a bag."""

    tmodel_key: str
    key_name: str
    key_value: str


@dataclass
class CategoryBag:
    """Classification references (yellow pages)."""

    references: list[KeyedReference] = field(default_factory=list)

    def add(self, tmodel_key: str, key_name: str, key_value: str) -> None:
        self.references.append(KeyedReference(tmodel_key, key_name, key_value))

    def matches(self, tmodel_key: str, key_value: str) -> bool:
        return any(
            r.tmodel_key == tmodel_key and r.key_value == key_value
            for r in self.references
        )


@dataclass
class IdentifierBag:
    """Identity references (D-U-N-S numbers etc.), Table 1.3."""

    references: list[KeyedReference] = field(default_factory=list)

    def add(self, tmodel_key: str, key_name: str, key_value: str) -> None:
        self.references.append(KeyedReference(tmodel_key, key_name, key_value))


@dataclass
class TModel:
    """Technical model: a named technical specification reference."""

    tmodel_key: str
    name: str
    description: str = ""
    overview_url: str = ""
    category_bag: CategoryBag = field(default_factory=CategoryBag)
    deleted: bool = False


@dataclass
class BindingTemplate:
    """Green pages: one access point of a service."""

    binding_key: str
    service_key: str
    access_point: str
    description: str = ""
    tmodel_keys: list[str] = field(default_factory=list)


@dataclass
class BusinessService:
    """One logical service of a business."""

    service_key: str
    business_key: str
    name: str
    description: str = ""
    category_bag: CategoryBag = field(default_factory=CategoryBag)
    binding_templates: list[BindingTemplate] = field(default_factory=list)


@dataclass
class BusinessEntity:
    """White pages: the business itself."""

    business_key: str
    name: str
    description: str = ""
    contacts: list[str] = field(default_factory=list)
    identifier_bag: IdentifierBag = field(default_factory=IdentifierBag)
    category_bag: CategoryBag = field(default_factory=CategoryBag)
    services: list[BusinessService] = field(default_factory=list)

    def service(self, service_key: str) -> BusinessService | None:
        for service in self.services:
            if service.service_key == service_key:
                return service
        return None


@dataclass(frozen=True)
class PublisherAssertion:
    """A one-sided relationship claim between two businesses (Figure 1.8).

    The relationship becomes *visible* only when both parties assert it
    (thesis §1.3.1.4) — the status check lives in the registry.
    """

    from_key: str
    to_key: str
    keyed_reference: KeyedReference

    def complements(self, other: "PublisherAssertion") -> bool:
        return (
            self.from_key == other.from_key
            and self.to_key == other.to_key
            and self.keyed_reference == other.keyed_reference
        )


#: canonical taxonomy tModels shipped with UDDI v2+ (thesis Table 1.2)
CANONICAL_TMODELS = {
    "uuid:uddi-org:naics": "unspsc-org:naics",
    "uuid:uddi-org:unspsc": "unspsc-org:unspsc:3-1",
    "uuid:uddi-org:iso3166": "iso-ch:3166:1999",
    "uuid:uddi-org:general_keywords": "uddi-org:general_keywords",
    "uuid:dnb-com:D-U-N-S": "dnb-com:D-U-N-S",
}


def require_key(key: str, what: str) -> str:
    if not key:
        raise InvalidRequestError(f"{what} requires a key")
    return key
