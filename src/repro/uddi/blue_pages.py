"""UDDIe-style "blue pages": user-defined service properties + property search.

Thesis §1.4 cites UDDIe (Ali et al. [24]): *"a new notion of 'blue pages' …
enables recording of user defined properties associated with a Web Service.
UDDIe adds to the existing search capabilities of a UDDI registry by
enabling searching on user recorded properties.  The properties could be
such as CPU load, network bandwidth, etc."*

This module reproduces that related-work approach as a baseline for the
thesis scheme: properties are (name, type, value) triples attached to
bindingTemplates, refreshed by whoever monitors the hosts, and clients
search with comparison filters — i.e. the *client* asks "bindings with
cpuLoad < 2", instead of the registry transparently reordering.  Bench RW-1
compares the two on the same workload.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.uddi.registry import UddiRegistry
from repro.util.errors import InvalidRequestError, ObjectNotFoundError


class PropertyType(enum.Enum):
    NUMBER = "number"
    STRING = "string"


@dataclass(frozen=True)
class ServiceProperty:
    """One user-defined property on a bindingTemplate."""

    name: str
    value: float | str
    property_type: PropertyType

    @classmethod
    def number(cls, name: str, value: float) -> "ServiceProperty":
        return cls(name=name, value=float(value), property_type=PropertyType.NUMBER)

    @classmethod
    def string(cls, name: str, value: str) -> "ServiceProperty":
        return cls(name=name, value=value, property_type=PropertyType.STRING)


_OPS = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "=": lambda a, b: a == b,
}


@dataclass(frozen=True)
class PropertyFilter:
    """A search predicate over one property: ``cpuLoad < 2.0``."""

    name: str
    op: str
    value: float | str

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise InvalidRequestError(f"unknown property operator: {self.op!r}")

    def matches(self, prop: ServiceProperty) -> bool:
        try:
            return _OPS[self.op](prop.value, self.value)
        except TypeError:
            return False


class BluePages:
    """The UDDIe property extension over one UDDI registry."""

    def __init__(self, registry: UddiRegistry) -> None:
        self.registry = registry
        #: binding_key → {property name: property}
        self._properties: dict[str, dict[str, ServiceProperty]] = {}

    # -- recording -------------------------------------------------------------

    def set_property(self, binding_key: str, prop: ServiceProperty) -> None:
        """Record/refresh a property on a binding (the monitoring agent's call)."""
        # validate the binding exists
        found = False
        for business in self.registry._businesses.values():
            for service in business.services:
                for binding in service.binding_templates:
                    if binding.binding_key == binding_key:
                        found = True
        if not found:
            raise ObjectNotFoundError(binding_key, f"no bindingTemplate {binding_key}")
        self._properties.setdefault(binding_key, {})[prop.name] = prop

    def get_properties(self, binding_key: str) -> dict[str, ServiceProperty]:
        return dict(self._properties.get(binding_key, {}))

    # -- searching ----------------------------------------------------------------

    def find_bindings(
        self, service_key: str, filters: list[PropertyFilter]
    ) -> list[str]:
        """Binding keys of *service_key* whose properties satisfy all filters.

        Bindings missing a filtered property do NOT match (they cannot be
        certified) — the same conservative rule the thesis scheme applies to
        unmonitored hosts.
        """
        service = self.registry.get_service_detail(service_key)
        out: list[str] = []
        for binding in service.binding_templates:
            properties = self._properties.get(binding.binding_key, {})
            ok = True
            for filt in filters:
                prop = properties.get(filt.name)
                if prop is None or not filt.matches(prop):
                    ok = False
                    break
            if ok:
                out.append(binding.binding_key)
        return out

    def find_access_points(
        self, service_key: str, filters: list[PropertyFilter]
    ) -> list[str]:
        """Access points of the matching bindings, in publisher order.

        UDDIe returns the matching set unordered by load — ranking is the
        thesis scheme's addition; the client picks among these itself.
        """
        keys = set(self.find_bindings(service_key, filters))
        service = self.registry.get_service_detail(service_key)
        return [
            b.access_point
            for b in service.binding_templates
            if b.binding_key in keys
        ]
